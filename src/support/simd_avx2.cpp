// The AVX2+FMA kernel table -- the only TU in the tree compiled with
// -mavx2 -mfma (CMake sets the flags on exactly this file) and the only
// one allowed to include <immintrin.h> (the simd-isolation project lint
// enforces that).
//
// Rounding contract: these kernels are *tolerance-pinned*, not bit-pinned.
// Reductions still widen every float to double before accumulating -- the
// same precision discipline as the scalar chains -- but run four-lane FMA
// chains (multiple independent accumulators), so results differ from the
// pinned scalar series in the last ulps.  Elementwise float kernels (axpy,
// the transpose accumulate) fuse the multiply-add per lane, which rounds
// once instead of twice per element.  tests/test_kernel_parity.cpp bounds
// the divergence; nothing dispatched here may feed a bit-pin assertion.
//
// When the build cannot enable AVX2+FMA (non-x86 target, flags rejected),
// the guard below compiles this TU down to a null table and the dispatcher
// stays on scalar.

#include "support/simd.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace fairbfl::support::simd {

namespace {

/// Horizontal sum of a 4-lane double accumulator.
inline double hsum(__m256d v) noexcept {
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d sum2 = _mm_add_pd(lo, hi);
    const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
    return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

/// Widen 4 floats at p to a 4-lane double vector.
inline __m256d load4d(const float* p) noexcept {
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
}

double avx2_dot(const float* x, const float* y, std::size_t n) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    __m256d a2 = _mm256_setzero_pd();
    __m256d a3 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        a0 = _mm256_fmadd_pd(load4d(x + i), load4d(y + i), a0);
        a1 = _mm256_fmadd_pd(load4d(x + i + 4), load4d(y + i + 4), a1);
        a2 = _mm256_fmadd_pd(load4d(x + i + 8), load4d(y + i + 8), a2);
        a3 = _mm256_fmadd_pd(load4d(x + i + 12), load4d(y + i + 12), a3);
    }
    for (; i + 4 <= n; i += 4)
        a0 = _mm256_fmadd_pd(load4d(x + i), load4d(y + i), a0);
    double acc =
        hsum(_mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3)));
    for (; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double avx2_squared_distance(const float* x, const float* y, std::size_t n) {
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256d d0 = _mm256_sub_pd(load4d(x + i), load4d(y + i));
        const __m256d d1 =
            _mm256_sub_pd(load4d(x + i + 4), load4d(y + i + 4));
        a0 = _mm256_fmadd_pd(d0, d0, a0);
        a1 = _mm256_fmadd_pd(d1, d1, a1);
    }
    for (; i + 4 <= n; i += 4) {
        const __m256d d = _mm256_sub_pd(load4d(x + i), load4d(y + i));
        a0 = _mm256_fmadd_pd(d, d, a0);
    }
    double acc = hsum(_mm256_add_pd(a0, a1));
    for (; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

void avx2_axpy(float alpha, const float* x, float* y, std::size_t n) {
    const __m256 va = _mm256_set1_ps(alpha);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 vy = _mm256_loadu_ps(y + i);
        _mm256_storeu_ps(y + i,
                         _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

void avx2_gemv(const float* a, std::size_t rows, std::size_t cols,
               const float* x, const float* bias, float* out) {
    std::size_t r = 0;
    // Two rows at a time, two 4-lane double chains each: the row pair
    // shares every load of x, and four independent FMA chains keep the
    // port busy despite the 4-cycle latency.
    for (; r + 2 <= rows; r += 2) {
        const float* a0 = a + r * cols;
        const float* a1 = a0 + cols;
        __m256d s00 = _mm256_setzero_pd();
        __m256d s01 = _mm256_setzero_pd();
        __m256d s10 = _mm256_setzero_pd();
        __m256d s11 = _mm256_setzero_pd();
        std::size_t j = 0;
        for (; j + 8 <= cols; j += 8) {
            const __m256d x0 = load4d(x + j);
            const __m256d x1 = load4d(x + j + 4);
            s00 = _mm256_fmadd_pd(load4d(a0 + j), x0, s00);
            s01 = _mm256_fmadd_pd(load4d(a0 + j + 4), x1, s01);
            s10 = _mm256_fmadd_pd(load4d(a1 + j), x0, s10);
            s11 = _mm256_fmadd_pd(load4d(a1 + j + 4), x1, s11);
        }
        double sum0 = hsum(_mm256_add_pd(s00, s01));
        double sum1 = hsum(_mm256_add_pd(s10, s11));
        for (; j < cols; ++j) {
            const double xj = static_cast<double>(x[j]);
            sum0 += static_cast<double>(a0[j]) * xj;
            sum1 += static_cast<double>(a1[j]) * xj;
        }
        if (bias == nullptr) {
            out[r] = static_cast<float>(sum0);
            out[r + 1] = static_cast<float>(sum1);
        } else {
            out[r] = bias[r] + static_cast<float>(sum0);
            out[r + 1] = bias[r + 1] + static_cast<float>(sum1);
        }
    }
    if (r < rows) {
        const double s = avx2_dot(a + r * cols, x, cols);
        out[r] = bias == nullptr ? static_cast<float>(s)
                                 : bias[r] + static_cast<float>(s);
    }
}

void avx2_gemv_transpose_accumulate(const float* a, std::size_t rows,
                                    std::size_t cols, const float* d,
                                    float* out) {
    for (std::size_t r = 0; r < rows; ++r)
        avx2_axpy(d[r], a + r * cols, out, cols);
}

void avx2_outer_accumulate(const float* d, const float* x, std::size_t rows,
                           std::size_t cols, float* y) {
    for (std::size_t r = 0; r < rows; ++r)
        avx2_axpy(d[r], x, y + r * cols, cols);
}

void avx2_dot_and_norm(const float* x, const float* y, std::size_t n,
                       double* dot_out, double* x_norm2_out) {
    // One traversal of x feeds both reductions -- the win over the scalar
    // table's two passes on the batched cosine path.
    __m256d dot0 = _mm256_setzero_pd();
    __m256d dot1 = _mm256_setzero_pd();
    __m256d nrm0 = _mm256_setzero_pd();
    __m256d nrm1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256d x0 = load4d(x + i);
        const __m256d x1 = load4d(x + i + 4);
        dot0 = _mm256_fmadd_pd(x0, load4d(y + i), dot0);
        dot1 = _mm256_fmadd_pd(x1, load4d(y + i + 4), dot1);
        nrm0 = _mm256_fmadd_pd(x0, x0, nrm0);
        nrm1 = _mm256_fmadd_pd(x1, x1, nrm1);
    }
    double dot = hsum(_mm256_add_pd(dot0, dot1));
    double nrm = hsum(_mm256_add_pd(nrm0, nrm1));
    for (; i < n; ++i) {
        const double xi = static_cast<double>(x[i]);
        dot += xi * static_cast<double>(y[i]);
        nrm += xi * xi;
    }
    *dot_out = dot;
    *x_norm2_out = nrm;
}

constexpr KernelTable kAvx2Table = {
    avx2_dot,
    avx2_dot,  // blocked == plain in a reassociated table
    avx2_squared_distance,
    avx2_squared_distance,
    avx2_axpy,
    avx2_gemv,
    avx2_gemv_transpose_accumulate,
    avx2_outer_accumulate,
    avx2_dot_and_norm,
    "avx2",
};

}  // namespace

namespace detail {
const KernelTable* avx2_table() noexcept { return &kAvx2Table; }
}  // namespace detail

}  // namespace fairbfl::support::simd

#else  // !(__AVX2__ && __FMA__)

namespace fairbfl::support::simd::detail {
const KernelTable* avx2_table() noexcept { return nullptr; }
}  // namespace fairbfl::support::simd::detail

#endif
