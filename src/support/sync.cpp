#include "support/sync.hpp"

namespace fairbfl::support {

// Out-of-line so the wait/notify protocol has exactly one instantiation
// the analysis (and a debugger) can anchor on; the attribute contracts
// live on the declarations in sync.hpp.

void CondVar::wait(Mutex& mu) { cv_.wait(mu.mu_); }

void CondVar::notify_one() noexcept { cv_.notify_one(); }

void CondVar::notify_all() noexcept { cv_.notify_all(); }

}  // namespace fairbfl::support
