#pragma once
// Runtime-dispatched kernel table behind the vecmath/gemv/projection entry
// points.
//
// The scalar kernels in vecmath.cpp are bit-pinned: fixed-seed series,
// the batched==reference training equivalence, and the reward hex pins
// all depend on their exact accumulation order.  A SIMD+FMA variant
// necessarily rounds differently (fused multiply-adds skip the
// intermediate rounding; wide accumulators reassociate the chain), so the
// fast path cannot hide behind the bit-pin convention.  Instead the two
// live side by side in a function-pointer table:
//
//   * "scalar" -- the pinned reference kernels, byte-for-byte the loops
//     that produced every committed fixed-seed series.  The default: a
//     process that never opts in behaves exactly like the pre-dispatch
//     build on every ISA.
//   * "avx2"   -- AVX2+FMA variants (src/support/simd_avx2.cpp, compiled
//     with -mavx2 -mfma in its own TU).  Reduction kernels keep double
//     accumulation (floats widened before the FMA) but run four doubles
//     per chain; elementwise float kernels run eight lanes.  Covered by
//     the tolerance-based parity harness (tests/test_kernel_parity.cpp),
//     never by bit pins.
//
// Selection: FAIRBFL_KERNELS=scalar|simd|auto in the environment, or
// set_mode()/set_mode_name() from a CLI flag (--kernels= on fairbfl_sim /
// bench_perf_round).  "simd" and "auto" both probe CPUID at runtime and
// fall back to scalar when AVX2+FMA is absent -- the only difference is
// intent ("simd" is an explicit request benches use; "auto" is the
// deploy-anywhere spelling).  The resolved decision is emitted once as
// the "kernels.dispatch" telemetry counter (0 = scalar, 1 = avx2) so
// perf artifacts can attribute a fast run to the table that served it.
//
// docs/ARCHITECTURE.md ("Kernel dispatch & the tolerance-pin convention")
// carries the how-to for adding another variant.

#include <cstddef>

namespace fairbfl::support::simd {

/// Requested dispatch policy (what the user asked for, not necessarily
/// what the CPU can serve -- see active()).
enum class Mode {
    kScalar = 0,  ///< pinned reference kernels, bit-identical everywhere
    kSimd = 1,    ///< widest supported table (scalar when CPU lacks AVX2+FMA)
    kAuto = 2,    ///< same probe as kSimd; the deploy-anywhere default knob
};

/// One resolved kernel set.  Raw pointers + sizes (not spans) so the
/// `-march`-gated TU needs nothing from the rest of the tree and the
/// indirect call stays a plain function pointer.
struct KernelTable {
    /// Strict left-to-right double-chain dot (training/theta discipline).
    /// The avx2 variant reassociates -- callers opted out of bit pins.
    double (*dot)(const float* x, const float* y, std::size_t n);
    /// Blocked dot: reassociated in every table (comparison-only).
    double (*dot_blocked)(const float* x, const float* y, std::size_t n);
    /// Strict squared Euclidean distance.
    double (*squared_distance)(const float* x, const float* y,
                               std::size_t n);
    /// Blocked squared distance (comparison-only consumers).
    double (*squared_distance_blocked)(const float* x, const float* y,
                                       std::size_t n);
    /// y += alpha * x (elementwise; exact in every table).
    void (*axpy)(float alpha, const float* x, float* y, std::size_t n);
    /// Row-major rows x cols matrix-vector product; bias may be null.
    void (*gemv)(const float* a, std::size_t rows, std::size_t cols,
                 const float* x, const float* bias, float* out);
    /// out[j] += sum_r d[r] * a[r * cols + j], r applied in order.
    void (*gemv_transpose_accumulate)(const float* a, std::size_t rows,
                                      std::size_t cols, const float* d,
                                      float* out);
    /// Row r of y += d[r] * x.
    void (*outer_accumulate)(const float* d, const float* x,
                             std::size_t rows, std::size_t cols, float* y);
    /// Fused pass for the batched cosine kernel: *dot_out = dot(x, y) and
    /// *x_norm2_out = dot(x, x) in one traversal of x.
    void (*dot_and_norm)(const float* x, const float* y, std::size_t n,
                         double* dot_out, double* x_norm2_out);
    /// Diagnostic name ("scalar", "avx2") -- perf JSON `kernels` key.
    const char* name;
};

/// True when this CPU can run the AVX2+FMA table (always false off x86).
[[nodiscard]] bool cpu_supports_avx2_fma() noexcept;

/// Selects the table for `mode` (probing the CPU for kSimd/kAuto) and
/// makes it the active one.  Thread-safe; emits the dispatch telemetry
/// counter on every change of the resolved table.
void set_mode(Mode mode) noexcept;

/// set_mode from a CLI/environment spelling ("scalar" | "simd" | "auto").
/// Returns false (and changes nothing) for an unknown name.
bool set_mode_name(const char* name) noexcept;

/// The active kernel table.  First use resolves FAIRBFL_KERNELS from the
/// environment (unset or unrecognized -> scalar, the pinned default);
/// set_mode()/set_mode_name() override it for the rest of the process.
[[nodiscard]] const KernelTable& active() noexcept;

/// Name of the active table ("scalar" / "avx2") for headers and logs.
[[nodiscard]] const char* active_name() noexcept;

/// Notified with the table name whenever dispatch publishes a different
/// kernel table.  Must be noexcept: it can fire from whichever thread
/// first touches the dispatch state.
using DispatchObserver = void (*)(const char* table_name) noexcept;

/// Installs the dispatch observer (nullptr clears it) and, when a table
/// is already published, replays the current name so a late registration
/// still sees it.  Upward-dependency firewall: support must not include
/// telemetry (layer-deps), so the telemetry breadcrumb for kernel
/// dispatch registers itself through this hook instead (telemetry.cpp).
void set_dispatch_observer(DispatchObserver observer) noexcept;

namespace detail {
/// The AVX2+FMA table, or nullptr when this binary was built without the
/// -mavx2 -mfma TU (non-x86 targets, compilers without the flags).  Lives
/// in simd_avx2.cpp so only that TU needs the wide-ISA flags.
[[nodiscard]] const KernelTable* avx2_table() noexcept;
/// The pinned scalar table (always available; the reference the parity
/// harness measures divergence against).
[[nodiscard]] const KernelTable& scalar_table() noexcept;
}  // namespace detail

}  // namespace fairbfl::support::simd
