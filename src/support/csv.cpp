#include "support/csv.hpp"

#include <cstdio>

namespace fairbfl::support {

bool CsvWriter::tee_to_file(const std::string& path) {
    file_.open(path, std::ios::trunc);
    has_file_ = file_.is_open();
    return has_file_;
}

void CsvWriter::header(std::initializer_list<std::string_view> names) {
    std::vector<std::string> cells;
    cells.reserve(names.size());
    for (auto name : names) cells.emplace_back(name);
    emit(cells);
}

void CsvWriter::header(const std::vector<std::string>& names) { emit(names); }

CsvWriter::Row& CsvWriter::Row::col(std::string_view value) {
    cells_.emplace_back(value);
    return *this;
}

CsvWriter::Row& CsvWriter::Row::col(double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    cells_.emplace_back(buf);
    return *this;
}

CsvWriter::Row& CsvWriter::Row::col(std::int64_t value) {
    cells_.push_back(std::to_string(value));
    return *this;
}

CsvWriter::Row& CsvWriter::Row::col(std::size_t value) {
    cells_.push_back(std::to_string(value));
    return *this;
}

void CsvWriter::Row::end() {
    if (emitted_) return;
    emitted_ = true;
    writer_->emit(cells_);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i) line += ',';
        line += escape(cells[i]);
    }
    line += '\n';
    (*out_) << line;
    if (has_file_) file_ << line;
}

std::string CsvWriter::escape(std::string_view raw) {
    const bool needs_quotes =
        raw.find_first_of(",\"\n") != std::string_view::npos;
    if (!needs_quotes) return std::string(raw);
    std::string quoted = "\"";
    for (char c : raw) {
        if (c == '"') quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

}  // namespace fairbfl::support
