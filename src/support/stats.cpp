#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace fairbfl::support {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double p) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    p = std::clamp(p, 0.0, 100.0);
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t window) {
    std::vector<double> out;
    out.reserve(xs.size());
    if (window == 0) window = 1;
    double acc = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        acc += xs[i];
        if (i >= window) acc -= xs[i - window];
        const std::size_t effective = std::min(i + 1, window);
        out.push_back(acc / static_cast<double>(effective));
    }
    return out;
}

ConvergenceDetector::ConvergenceDetector(double tolerance,
                                         std::size_t patience) noexcept
    : tolerance_(tolerance), patience_(patience) {}

bool ConvergenceDetector::add(double accuracy) noexcept {
    const std::size_t round = rounds_seen_++;
    if (converged()) return true;
    if (has_last_ && std::abs(accuracy - last_) <= tolerance_) {
        ++stable_streak_;
        if (stable_streak_ >= patience_) converged_round_ = round;
    } else {
        stable_streak_ = 0;
    }
    last_ = accuracy;
    has_last_ = true;
    return converged();
}

}  // namespace fairbfl::support
