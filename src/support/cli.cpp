#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>

namespace fairbfl::support {

CliArgs::CliArgs(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            help_ = true;
            continue;
        }
        if (arg.size() < 3 || arg.substr(0, 2) != "--") {
            std::fprintf(stderr, "unrecognized argument: %.*s\n",
                         static_cast<int>(arg.size()), arg.data());
            parse_error_ = true;
            continue;
        }
        arg.remove_prefix(2);
        const auto eq = arg.find('=');
        if (eq == std::string_view::npos) {
            values_[std::string(arg)] = "true";
        } else {
            values_[std::string(arg.substr(0, eq))] =
                std::string(arg.substr(eq + 1));
        }
    }
}

std::string CliArgs::get_string(std::string_view key,
                                std::string_view fallback) {
    consumed_[std::string(key)] = true;
    const auto it = values_.find(key);
    return it == values_.end() ? std::string(fallback) : it->second;
}

std::int64_t CliArgs::get_int(std::string_view key, std::int64_t fallback) {
    consumed_[std::string(key)] = true;
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    // A malformed number silently becoming 0 (or a bare `--rounds`
    // becoming "true" -> 0) corrupts sweeps; flag it instead.
    char* end = nullptr;
    const std::int64_t value = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
        std::fprintf(stderr, "--%s: '%s' is not an integer\n",
                     it->first.c_str(), it->second.c_str());
        parse_error_ = true;
        return fallback;
    }
    return value;
}

double CliArgs::get_double(std::string_view key, double fallback) {
    consumed_[std::string(key)] = true;
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    char* end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0') {
        std::fprintf(stderr, "--%s: '%s' is not a number\n",
                     it->first.c_str(), it->second.c_str());
        parse_error_ = true;
        return fallback;
    }
    return value;
}

bool CliArgs::get_flag(std::string_view key, bool fallback) {
    consumed_[std::string(key)] = true;
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0";
}

bool CliArgs::finish(std::string_view program_name) const {
    bool ok = !parse_error_;
    for (const auto& [key, value] : values_) {
        (void)value;
        if (!consumed_.contains(key)) {
            std::fprintf(stderr, "%.*s: unknown flag --%s\n",
                         static_cast<int>(program_name.size()),
                         program_name.data(), key.c_str());
            ok = false;
        }
    }
    return ok;
}

}  // namespace fairbfl::support
