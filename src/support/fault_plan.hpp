#pragma once
// Seeded, data-driven fault plans for the async round engine's simulation
// harness (tests/test_fault_injection.cpp).
//
// A plan is a flat list of (kind, round range, client) entries queried by
// the round engine when it schedules each client's delivery:
//
//   * dropout / churn -- the client's update is never delivered for the
//     covered rounds (dropout is a one-round churn; churn spans several);
//   * straggler      -- the delivery's virtual arrival time is multiplied
//     by `factor` (e.g. 10x for a p99 tail);
//   * duplicate      -- `copies` extra replayed deliveries of the same
//     update arrive after the original (the engine deduplicates and
//     counts them).
//
// Plans are immutable after construction and queried without randomness,
// so a (plan, seed) pair replays byte-identically under any thread count.
// `sampled()` draws a plan from per-(round, client) Bernoulli rates in a
// fixed iteration order -- the seeded, data-driven hook the fault tests
// use; hand-built plans via the add_*() calls pin exact scenarios.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fairbfl::support {

/// Rates for FaultPlan::sampled(), all per (round, client) unless noted.
struct FaultSpec {
    double dropout_rate = 0.0;       ///< update silently never delivered
    double straggler_rate = 0.0;     ///< arrival delayed by straggler_factor
    double straggler_factor = 10.0;  ///< arrival-time multiplier when drawn
    double duplicate_rate = 0.0;     ///< one replayed copy is delivered
    /// Per (round, client) probability of going offline for churn_rounds
    /// consecutive rounds (models churn: leave, then rejoin).
    double churn_rate = 0.0;
    std::uint64_t churn_rounds = 2;
};

class FaultPlan {
public:
    /// Client `client` never delivers in round `round`.
    void add_dropout(std::uint64_t round, std::uint32_t client);
    /// Client `client` is offline for rounds [first_round, last_round].
    void add_churn(std::uint64_t first_round, std::uint64_t last_round,
                   std::uint32_t client);
    /// Client `client`'s round-`round` arrival time is multiplied by
    /// `factor` (stacking stragglers multiply).
    void add_straggler(std::uint64_t round, std::uint32_t client,
                       double factor);
    /// `copies` replayed deliveries of client `client`'s round-`round`
    /// update arrive after the original.
    void add_duplicate(std::uint64_t round, std::uint32_t client,
                       std::size_t copies = 1);

    /// Draws a plan covering `rounds` x `clients` from `spec`'s rates.
    /// Deterministic in (spec, seed); iteration order is fixed, so the
    /// same arguments always produce the same plan.
    [[nodiscard]] static FaultPlan sampled(const FaultSpec& spec,
                                           std::uint64_t seed,
                                           std::uint64_t rounds,
                                           std::uint32_t clients);

    /// True when the client's round-`round` update is never delivered
    /// (dropout or churn window).
    [[nodiscard]] bool dropped(std::uint64_t round,
                               std::uint32_t client) const noexcept;
    /// Product of every straggler factor covering (round, client); 1.0
    /// when none apply.
    [[nodiscard]] double delay_factor(std::uint64_t round,
                                      std::uint32_t client) const noexcept;
    /// Extra replayed deliveries of (round, client)'s update.
    [[nodiscard]] std::size_t duplicates(std::uint64_t round,
                                         std::uint32_t client) const noexcept;

    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept {
        return entries_.size();
    }

private:
    enum class Kind : std::uint8_t {
        kDropout,    ///< covers add_dropout and add_churn
        kStraggler,
        kDuplicate,
    };

    struct Entry {
        std::uint64_t first_round = 0;
        std::uint64_t last_round = 0;  ///< inclusive
        std::uint32_t client = 0;
        Kind kind = Kind::kDropout;
        double factor = 1.0;       ///< straggler multiplier
        std::size_t copies = 0;    ///< duplicate deliveries
    };

    [[nodiscard]] bool covers(const Entry& entry, std::uint64_t round,
                              std::uint32_t client) const noexcept {
        return entry.client == client && entry.first_round <= round &&
               round <= entry.last_round;
    }

    std::vector<Entry> entries_;
};

}  // namespace fairbfl::support
