#pragma once
// Small statistics helpers used by the experiment harness and benches.

#include <cstddef>
#include <span>
#include <vector>

namespace fairbfl::support {

/// Welford running mean/variance accumulator.
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Arithmetic mean of a span (0 for empty input).
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100].  Copies and sorts.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Trailing moving average with the given window (window >= 1).
[[nodiscard]] std::vector<double> moving_average(std::span<const double> xs,
                                                 std::size_t window);

/// Convergence detector implementing the paper's Section 5.2 rule:
/// "converged when the accuracy change is within 0.5% for 5 consecutive
/// communication rounds".  Feed one accuracy per round; `converged_at()`
/// returns the first round index satisfying the rule, or npos.
class ConvergenceDetector {
public:
    explicit ConvergenceDetector(double tolerance = 0.005,
                                 std::size_t patience = 5) noexcept;

    /// Returns true once the rule has fired (sticky).
    bool add(double accuracy) noexcept;

    [[nodiscard]] bool converged() const noexcept {
        return converged_round_ != npos;
    }
    [[nodiscard]] std::size_t converged_at() const noexcept {
        return converged_round_;
    }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

private:
    double tolerance_;
    std::size_t patience_;
    std::size_t rounds_seen_ = 0;
    std::size_t stable_streak_ = 0;
    double last_ = 0.0;
    bool has_last_ = false;
    std::size_t converged_round_ = npos;
};

}  // namespace fairbfl::support
