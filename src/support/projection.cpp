#include "support/projection.hpp"

#include <cmath>
#include <stdexcept>

#include "support/rng.hpp"
#include "support/vecmath.hpp"

namespace fairbfl::support {

ProjectionMatrix gaussian_projection(std::size_t in_dim, std::size_t out_dim,
                                     std::uint64_t seed) {
    ProjectionMatrix projection;
    projection.in_dim = in_dim;
    projection.out_dim = out_dim;
    projection.rows.resize(in_dim * out_dim);
    // One serial stream: k*d normal draws cost microseconds next to the
    // O(n d k) projection itself, and a single stream keeps the matrix
    // independent of how the later projection is scheduled.
    auto rng = Rng::fork(seed, /*stream=*/0x9807EC);
    const float scale =
        out_dim > 0 ? 1.0F / std::sqrt(static_cast<float>(out_dim)) : 0.0F;
    for (auto& entry : projection.rows)
        entry = scale * static_cast<float>(rng.normal());
    return projection;
}

std::vector<std::vector<float>> project_rows(
    const ProjectionMatrix& projection,
    std::span<const std::vector<float>> points, ThreadPool& pool) {
    for (const auto& point : points) {
        if (point.size() < projection.in_dim)
            throw std::invalid_argument(
                "project_rows: point narrower than the projection");
    }
    std::vector<std::vector<float>> projected(points.size());
    parallel_for(
        0, points.size(),
        [&](std::size_t i) {
            projected[i].resize(projection.out_dim);
            gemv(projection.rows, projection.out_dim, projection.in_dim,
                 std::span<const float>(points[i])
                     .first(projection.in_dim),
                 /*bias=*/{}, projected[i]);
        },
        pool);
    return projected;
}

}  // namespace fairbfl::support
