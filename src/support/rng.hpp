#pragma once
// Deterministic random-number streams for reproducible parallel simulation.
//
// Every stochastic decision in the simulator draws from a named stream
// derived from (root seed, stream id, round).  Because a stream's state
// depends only on those integers -- never on scheduling order -- a run is
// bit-reproducible no matter how many worker threads execute it.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace fairbfl::support {

/// SplitMix64: used only to expand seeds into xoshiro256** state.
/// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna).  Small, fast, and good enough for
/// simulation workloads; satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the generator by running SplitMix64 over `seed`.
    explicit Rng(std::uint64_t seed = 0xF41B5D1ACEULL) noexcept;

    /// Derives an independent stream for (stream, round) under the same root
    /// seed.  Streams with distinct (stream, round) pairs are uncorrelated
    /// for all practical purposes (distinct SplitMix64 trajectories).
    [[nodiscard]] static Rng fork(std::uint64_t root_seed,
                                  std::uint64_t stream,
                                  std::uint64_t round = 0) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }

    result_type operator()() noexcept;

    /// Uniform in [0, 1).
    double uniform() noexcept;
    /// Uniform in [lo, hi).
    double uniform(double lo, double hi) noexcept;
    /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
    /// Standard normal via Box-Muller (cached second deviate).
    double normal() noexcept;
    /// Normal with the given mean / standard deviation.
    double normal(double mean, double stddev) noexcept;
    /// Exponential with the given rate (lambda > 0).
    double exponential(double rate) noexcept;
    /// Bernoulli trial with probability p of true.
    bool bernoulli(double p) noexcept;

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::span<T> items) noexcept {
        for (std::size_t i = items.size(); i > 1; --i) {
            const auto j = static_cast<std::size_t>(
                uniform_int(0, static_cast<std::int64_t>(i) - 1));
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

    /// k distinct indices sampled uniformly from [0, n) (partial shuffle).
    [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                          std::size_t k);

private:
    std::array<std::uint64_t, 4> state_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace fairbfl::support
