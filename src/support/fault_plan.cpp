#include "support/fault_plan.hpp"

#include "support/rng.hpp"

namespace fairbfl::support {

void FaultPlan::add_dropout(std::uint64_t round, std::uint32_t client) {
    entries_.push_back(Entry{round, round, client, Kind::kDropout, 1.0, 0});
}

void FaultPlan::add_churn(std::uint64_t first_round, std::uint64_t last_round,
                          std::uint32_t client) {
    entries_.push_back(
        Entry{first_round, last_round, client, Kind::kDropout, 1.0, 0});
}

void FaultPlan::add_straggler(std::uint64_t round, std::uint32_t client,
                              double factor) {
    entries_.push_back(
        Entry{round, round, client, Kind::kStraggler, factor, 0});
}

void FaultPlan::add_duplicate(std::uint64_t round, std::uint32_t client,
                              std::size_t copies) {
    entries_.push_back(
        Entry{round, round, client, Kind::kDuplicate, 1.0, copies});
}

FaultPlan FaultPlan::sampled(const FaultSpec& spec, std::uint64_t seed,
                             std::uint64_t rounds, std::uint32_t clients) {
    FaultPlan plan;
    // One stream per fault kind so adding a rate never shifts another
    // kind's draws (the common-random-numbers discipline the delay model
    // uses).  Iteration is round-major, client-minor -- fixed, so the
    // plan is a pure function of (spec, seed).
    auto drop_rng = Rng::fork(seed, /*stream=*/0xFA01);
    auto strag_rng = Rng::fork(seed, /*stream=*/0xFA02);
    auto dup_rng = Rng::fork(seed, /*stream=*/0xFA03);
    auto churn_rng = Rng::fork(seed, /*stream=*/0xFA04);
    for (std::uint64_t round = 0; round < rounds; ++round) {
        for (std::uint32_t client = 0; client < clients; ++client) {
            if (spec.dropout_rate > 0.0 &&
                drop_rng.bernoulli(spec.dropout_rate))
                plan.add_dropout(round, client);
            if (spec.straggler_rate > 0.0 &&
                strag_rng.bernoulli(spec.straggler_rate))
                plan.add_straggler(round, client, spec.straggler_factor);
            if (spec.duplicate_rate > 0.0 &&
                dup_rng.bernoulli(spec.duplicate_rate))
                plan.add_duplicate(round, client);
            if (spec.churn_rate > 0.0 &&
                churn_rng.bernoulli(spec.churn_rate)) {
                const std::uint64_t span =
                    spec.churn_rounds > 0 ? spec.churn_rounds - 1 : 0;
                plan.add_churn(round, round + span, client);
            }
        }
    }
    return plan;
}

bool FaultPlan::dropped(std::uint64_t round,
                        std::uint32_t client) const noexcept {
    for (const auto& entry : entries_) {
        if (entry.kind == Kind::kDropout && covers(entry, round, client))
            return true;
    }
    return false;
}

double FaultPlan::delay_factor(std::uint64_t round,
                               std::uint32_t client) const noexcept {
    double factor = 1.0;
    for (const auto& entry : entries_) {
        if (entry.kind == Kind::kStraggler && covers(entry, round, client))
            factor *= entry.factor;
    }
    return factor;
}

std::size_t FaultPlan::duplicates(std::uint64_t round,
                                  std::uint32_t client) const noexcept {
    std::size_t copies = 0;
    for (const auto& entry : entries_) {
        if (entry.kind == Kind::kDuplicate && covers(entry, round, client))
            copies += entry.copies;
    }
    return copies;
}

}  // namespace fairbfl::support
