#pragma once
// CSV emission for bench harnesses (each figure bench prints the series the
// paper plots; optionally mirrored to a file for offline plotting).

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fairbfl::support {

/// Streams rows as RFC-4180-ish CSV (quotes fields containing separators).
/// Writes to an std::ostream it does not own, and optionally tees to a file.
class CsvWriter {
public:
    explicit CsvWriter(std::ostream& out) : out_(&out) {}

    /// Additionally mirrors all rows into `path` (truncating).  Returns
    /// false when the file cannot be opened; stream output still works.
    bool tee_to_file(const std::string& path);

    void header(std::initializer_list<std::string_view> names);
    void header(const std::vector<std::string>& names);

    /// Appends one row.  Values are formatted with up to 6 significant
    /// decimal digits for doubles.
    class Row {
    public:
        explicit Row(CsvWriter& writer) : writer_(&writer) {}
        Row& col(std::string_view value);
        Row& col(double value);
        Row& col(std::int64_t value);
        Row& col(std::size_t value);
        /// Emits the row (also happens on destruction).
        void end();
        ~Row() { end(); }
        Row(const Row&) = delete;
        Row& operator=(const Row&) = delete;

    private:
        CsvWriter* writer_;
        std::vector<std::string> cells_;
        bool emitted_ = false;
    };

    Row row() { return Row(*this); }

private:
    friend class Row;
    void emit(const std::vector<std::string>& cells);
    static std::string escape(std::string_view raw);

    std::ostream* out_;
    std::ofstream file_;
    bool has_file_ = false;
};

}  // namespace fairbfl::support
