#include "support/vecmath.hpp"

#include <cassert>
#include <cmath>

#include "support/parallel.hpp"

namespace fairbfl::support {

namespace {

/// Dimension-chunk width for the parallel reduction kernels: big enough
/// that a chunk amortizes the fork overhead, small enough to split a
/// production-scale model across every core.
constexpr std::size_t kDimChunk = 8192;

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    // Elementwise, so the 4-way unroll is bit-identical to the plain loop.
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        y[i] += alpha * x[i];
        y[i + 1] += alpha * x[i + 1];
        y[i + 2] += alpha * x[i + 2];
        y[i + 3] += alpha * x[i + 3];
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) noexcept {
    for (auto& v : x) v *= alpha;
}

void fill(std::span<float> x, float value) noexcept {
    for (auto& v : x) v = value;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    // Strictly left-to-right: training and theta depend on these bits.
    double acc = 0.0;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double norm2(std::span<const float> x) noexcept {
    return std::sqrt(dot(x, x));
}

double squared_distance(std::span<const float> x,
                        std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    double acc = 0.0;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

double dot_blocked(std::span<const float> x,
                   std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
        a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
        a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
        a3 += static_cast<double>(x[i + 3]) * static_cast<double>(y[i + 3]);
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double squared_distance_blocked(std::span<const float> x,
                                std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const double d0 =
            static_cast<double>(x[i]) - static_cast<double>(y[i]);
        const double d1 =
            static_cast<double>(x[i + 1]) - static_cast<double>(y[i + 1]);
        const double d2 =
            static_cast<double>(x[i + 2]) - static_cast<double>(y[i + 2]);
        const double d3 =
            static_cast<double>(x[i + 3]) - static_cast<double>(y[i + 3]);
        a0 += d0 * d0;
        a1 += d1 * d1;
        a2 += d2 * d2;
        a3 += d3 * d3;
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

void gemv(std::span<const float> a, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> bias,
          std::span<float> out) noexcept {
    assert(a.size() == rows * cols);
    assert(x.size() == cols);
    assert(out.size() >= rows);
    assert(bias.empty() || bias.size() >= rows);
    const float* base = a.data();
    const float* xp = x.data();
    std::size_t r = 0;
    // Four rows at a time: four independent left-to-right double chains
    // hide the FP-add latency that serializes a single `dot`.  The inner
    // loop is unrolled by two columns; each chain still receives its
    // products strictly in column order, so every row is bit-identical to
    // a lone `dot`.
    for (; r + 4 <= rows; r += 4) {
        const float* a0 = base + r * cols;
        const float* a1 = a0 + cols;
        const float* a2 = a1 + cols;
        const float* a3 = a2 + cols;
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        std::size_t j = 0;
        for (; j + 2 <= cols; j += 2) {
            const double x0 = static_cast<double>(xp[j]);
            const double x1 = static_cast<double>(xp[j + 1]);
            s0 += static_cast<double>(a0[j]) * x0;
            s0 += static_cast<double>(a0[j + 1]) * x1;
            s1 += static_cast<double>(a1[j]) * x0;
            s1 += static_cast<double>(a1[j + 1]) * x1;
            s2 += static_cast<double>(a2[j]) * x0;
            s2 += static_cast<double>(a2[j + 1]) * x1;
            s3 += static_cast<double>(a3[j]) * x0;
            s3 += static_cast<double>(a3[j + 1]) * x1;
        }
        for (; j < cols; ++j) {
            const double xj = static_cast<double>(xp[j]);
            s0 += static_cast<double>(a0[j]) * xj;
            s1 += static_cast<double>(a1[j]) * xj;
            s2 += static_cast<double>(a2[j]) * xj;
            s3 += static_cast<double>(a3[j]) * xj;
        }
        if (bias.empty()) {
            out[r] = static_cast<float>(s0);
            out[r + 1] = static_cast<float>(s1);
            out[r + 2] = static_cast<float>(s2);
            out[r + 3] = static_cast<float>(s3);
        } else {
            out[r] = bias[r] + static_cast<float>(s0);
            out[r + 1] = bias[r + 1] + static_cast<float>(s1);
            out[r + 2] = bias[r + 2] + static_cast<float>(s2);
            out[r + 3] = bias[r + 3] + static_cast<float>(s3);
        }
    }
    if (r + 2 <= rows) {
        // Two-row tail block: still two interleaved chains instead of
        // falling back to the latency-bound single dot.
        const float* a0 = base + r * cols;
        const float* a1 = a0 + cols;
        double s0 = 0.0, s1 = 0.0;
        for (std::size_t j = 0; j < cols; ++j) {
            const double xj = static_cast<double>(xp[j]);
            s0 += static_cast<double>(a0[j]) * xj;
            s1 += static_cast<double>(a1[j]) * xj;
        }
        if (bias.empty()) {
            out[r] = static_cast<float>(s0);
            out[r + 1] = static_cast<float>(s1);
        } else {
            out[r] = bias[r] + static_cast<float>(s0);
            out[r + 1] = bias[r + 1] + static_cast<float>(s1);
        }
        r += 2;
    }
    if (r < rows) {
        const double s = dot(a.subspan(r * cols, cols), x);
        out[r] = bias.empty() ? static_cast<float>(s)
                              : bias[r] + static_cast<float>(s);
    }
}

void gemv_transpose_accumulate(std::span<const float> a, std::size_t rows,
                               std::size_t cols, std::span<const float> d,
                               std::span<float> out) noexcept {
    assert(a.size() == rows * cols);
    assert(d.size() >= rows);
    assert(out.size() >= cols);
    for (std::size_t r = 0; r < rows; ++r) {
        const float dr = d[r];
        const float* row = a.data() + r * cols;
        for (std::size_t j = 0; j < cols; ++j) out[j] += dr * row[j];
    }
}

void outer_accumulate(std::span<const float> d, std::span<const float> x,
                      std::size_t rows, std::size_t cols,
                      std::span<float> y) noexcept {
    assert(d.size() >= rows);
    assert(x.size() == cols);
    assert(y.size() == rows * cols);
    for (std::size_t r = 0; r < rows; ++r)
        axpy(d[r], x, y.subspan(r * cols, cols));
}

void add_scaled_diff(float alpha, std::span<const float> x,
                     std::span<const float> z, std::span<float> y) noexcept {
    assert(x.size() == y.size());
    assert(z.size() == y.size());
    const std::size_t n = y.size();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        y[i] += alpha * (x[i] - z[i]);
        y[i + 1] += alpha * (x[i + 1] - z[i + 1]);
        y[i + 2] += alpha * (x[i + 2] - z[i + 2]);
        y[i + 3] += alpha * (x[i + 3] - z[i + 3]);
    }
    for (; i < n; ++i) y[i] += alpha * (x[i] - z[i]);
}

double cosine_distance(std::span<const float> x,
                       std::span<const float> y) noexcept {
    return cosine_distance_cached(x, y, norm2(x), norm2(y));
}

double cosine_distance_cached(std::span<const float> x,
                              std::span<const float> y, double norm_x,
                              double norm_y) noexcept {
    if (norm_x == 0.0 || norm_y == 0.0) return 1.0;
    double cosine = dot(x, y) / (norm_x * norm_y);
    // Clamp away floating-point drift so the result stays in [0, 2].
    if (cosine > 1.0) cosine = 1.0;
    if (cosine < -1.0) cosine = -1.0;
    return 1.0 - cosine;
}

std::vector<double> norms_of(std::span<const std::vector<float>> rows,
                             ThreadPool& pool) {
    std::vector<double> norms(rows.size());
    parallel_for(
        0, rows.size(), [&](std::size_t i) { norms[i] = norm2(rows[i]); },
        pool);
    return norms;
}

void cosine_distances_to(std::span<const std::vector<float>> rows,
                         std::span<const float> query,
                         std::span<double> out) noexcept {
    assert(rows.size() == out.size());
    const double query_norm = norm2(query);
    for (std::size_t i = 0; i < rows.size(); ++i)
        out[i] = cosine_distance_cached(rows[i], query, norm2(rows[i]),
                                        query_norm);
}

void weighted_sum(std::span<const RowView> rows,
                  std::span<const double> weights, std::span<float> out,
                  ThreadPool& pool) {
    assert(rows.size() == weights.size());
#ifndef NDEBUG
    for (const auto& row : rows) assert(row.size() == out.size());
#endif
    // Dimension-split: each output element accumulates its rows strictly
    // in order inside one chunk, so the result matches the serial
    // row-major axpy loop bit-for-bit under any thread count.
    parallel_chunks(
        0, out.size(), kDimChunk,
        [&](std::size_t lo, std::size_t hi) {
            const auto slice = out.subspan(lo, hi - lo);
            fill(slice, 0.0F);
            for (std::size_t r = 0; r < rows.size(); ++r) {
                axpy(static_cast<float>(weights[r]),
                     rows[r].subspan(lo, hi - lo), slice);
            }
        },
        pool);
}

void mean_of(std::span<const RowView> rows, std::span<float> out,
             ThreadPool& pool) {
    if (rows.empty()) {
        fill(out, 0.0F);
        return;
    }
#ifndef NDEBUG
    for (const auto& row : rows) assert(row.size() == out.size());
#endif
    const float inv = 1.0F / static_cast<float>(rows.size());
    parallel_chunks(
        0, out.size(), kDimChunk,
        [&](std::size_t lo, std::size_t hi) {
            const auto slice = out.subspan(lo, hi - lo);
            fill(slice, 0.0F);
            for (const auto& row : rows)
                axpy(1.0F, row.subspan(lo, hi - lo), slice);
            scale(slice, inv);
        },
        pool);
}

namespace {

std::vector<RowView> views_of(std::span<const std::vector<float>> rows) {
    return {rows.begin(), rows.end()};
}

}  // namespace

void weighted_sum(std::span<const std::vector<float>> rows,
                  std::span<const double> weights, std::span<float> out,
                  ThreadPool& pool) {
    weighted_sum(views_of(rows), weights, out, pool);
}

void mean_of(std::span<const std::vector<float>> rows, std::span<float> out,
             ThreadPool& pool) {
    mean_of(views_of(rows), out, pool);
}

}  // namespace fairbfl::support
