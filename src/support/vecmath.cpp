#include "support/vecmath.hpp"

#include <cassert>
#include <cmath>

#include "support/parallel.hpp"

namespace fairbfl::support {

namespace {

/// Dimension-chunk width for the parallel reduction kernels: big enough
/// that a chunk amortizes the fork overhead, small enough to split a
/// production-scale model across every core.
constexpr std::size_t kDimChunk = 8192;

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    // Elementwise, so the 4-way unroll is bit-identical to the plain loop.
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        y[i] += alpha * x[i];
        y[i + 1] += alpha * x[i + 1];
        y[i + 2] += alpha * x[i + 2];
        y[i + 3] += alpha * x[i + 3];
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) noexcept {
    for (auto& v : x) v *= alpha;
}

void fill(std::span<float> x, float value) noexcept {
    for (auto& v : x) v = value;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    // Strictly left-to-right: training and theta depend on these bits.
    double acc = 0.0;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double norm2(std::span<const float> x) noexcept {
    return std::sqrt(dot(x, x));
}

double squared_distance(std::span<const float> x,
                        std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    double acc = 0.0;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

double dot_blocked(std::span<const float> x,
                   std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
        a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
        a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
        a3 += static_cast<double>(x[i + 3]) * static_cast<double>(y[i + 3]);
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double squared_distance_blocked(std::span<const float> x,
                                std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const double d0 =
            static_cast<double>(x[i]) - static_cast<double>(y[i]);
        const double d1 =
            static_cast<double>(x[i + 1]) - static_cast<double>(y[i + 1]);
        const double d2 =
            static_cast<double>(x[i + 2]) - static_cast<double>(y[i + 2]);
        const double d3 =
            static_cast<double>(x[i + 3]) - static_cast<double>(y[i + 3]);
        a0 += d0 * d0;
        a1 += d1 * d1;
        a2 += d2 * d2;
        a3 += d3 * d3;
    }
    double acc = (a0 + a1) + (a2 + a3);
    for (; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

double cosine_distance(std::span<const float> x,
                       std::span<const float> y) noexcept {
    return cosine_distance_cached(x, y, norm2(x), norm2(y));
}

double cosine_distance_cached(std::span<const float> x,
                              std::span<const float> y, double norm_x,
                              double norm_y) noexcept {
    if (norm_x == 0.0 || norm_y == 0.0) return 1.0;
    double cosine = dot(x, y) / (norm_x * norm_y);
    // Clamp away floating-point drift so the result stays in [0, 2].
    if (cosine > 1.0) cosine = 1.0;
    if (cosine < -1.0) cosine = -1.0;
    return 1.0 - cosine;
}

std::vector<double> norms_of(std::span<const std::vector<float>> rows,
                             ThreadPool& pool) {
    std::vector<double> norms(rows.size());
    parallel_for(
        0, rows.size(), [&](std::size_t i) { norms[i] = norm2(rows[i]); },
        pool);
    return norms;
}

void cosine_distances_to(std::span<const std::vector<float>> rows,
                         std::span<const float> query,
                         std::span<double> out) noexcept {
    assert(rows.size() == out.size());
    const double query_norm = norm2(query);
    for (std::size_t i = 0; i < rows.size(); ++i)
        out[i] = cosine_distance_cached(rows[i], query, norm2(rows[i]),
                                        query_norm);
}

void weighted_sum(std::span<const RowView> rows,
                  std::span<const double> weights, std::span<float> out,
                  ThreadPool& pool) {
    assert(rows.size() == weights.size());
#ifndef NDEBUG
    for (const auto& row : rows) assert(row.size() == out.size());
#endif
    // Dimension-split: each output element accumulates its rows strictly
    // in order inside one chunk, so the result matches the serial
    // row-major axpy loop bit-for-bit under any thread count.
    parallel_chunks(
        0, out.size(), kDimChunk,
        [&](std::size_t lo, std::size_t hi) {
            const auto slice = out.subspan(lo, hi - lo);
            fill(slice, 0.0F);
            for (std::size_t r = 0; r < rows.size(); ++r) {
                axpy(static_cast<float>(weights[r]),
                     rows[r].subspan(lo, hi - lo), slice);
            }
        },
        pool);
}

void mean_of(std::span<const RowView> rows, std::span<float> out,
             ThreadPool& pool) {
    if (rows.empty()) {
        fill(out, 0.0F);
        return;
    }
#ifndef NDEBUG
    for (const auto& row : rows) assert(row.size() == out.size());
#endif
    const float inv = 1.0F / static_cast<float>(rows.size());
    parallel_chunks(
        0, out.size(), kDimChunk,
        [&](std::size_t lo, std::size_t hi) {
            const auto slice = out.subspan(lo, hi - lo);
            fill(slice, 0.0F);
            for (const auto& row : rows)
                axpy(1.0F, row.subspan(lo, hi - lo), slice);
            scale(slice, inv);
        },
        pool);
}

namespace {

std::vector<RowView> views_of(std::span<const std::vector<float>> rows) {
    return {rows.begin(), rows.end()};
}

}  // namespace

void weighted_sum(std::span<const std::vector<float>> rows,
                  std::span<const double> weights, std::span<float> out,
                  ThreadPool& pool) {
    weighted_sum(views_of(rows), weights, out, pool);
}

void mean_of(std::span<const std::vector<float>> rows, std::span<float> out,
             ThreadPool& pool) {
    mean_of(views_of(rows), out, pool);
}

}  // namespace fairbfl::support
