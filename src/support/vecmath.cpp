#include "support/vecmath.hpp"

#include <cassert>
#include <cmath>

#include "support/parallel.hpp"
#include "support/simd.hpp"

// Every kernel below routes through the runtime-dispatched table in
// support/simd.{hpp,cpp}.  The scalar table holds the pinned reference
// loops (byte-for-byte the bodies that used to live here); the avx2 table
// is the tolerance-pinned fast path.  This file keeps the span-based
// contracts and assertions; the tables work on raw pointers so the
// `-march`-gated TU stays dependency-free.

namespace fairbfl::support {

namespace {

/// Dimension-chunk width for the parallel reduction kernels: big enough
/// that a chunk amortizes the fork overhead, small enough to split a
/// production-scale model across every core.
constexpr std::size_t kDimChunk = 8192;

}  // namespace

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
    assert(x.size() == y.size());
    simd::active().axpy(alpha, x.data(), y.data(), x.size());
}

void scale(std::span<float> x, float alpha) noexcept {
    for (auto& v : x) v *= alpha;
}

void fill(std::span<float> x, float value) noexcept {
    for (auto& v : x) v = value;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    return simd::active().dot(x.data(), y.data(), x.size());
}

double norm2(std::span<const float> x) noexcept {
    return std::sqrt(dot(x, x));
}

double squared_distance(std::span<const float> x,
                        std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    return simd::active().squared_distance(x.data(), y.data(), x.size());
}

double dot_blocked(std::span<const float> x,
                   std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    return simd::active().dot_blocked(x.data(), y.data(), x.size());
}

double squared_distance_blocked(std::span<const float> x,
                                std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    return simd::active().squared_distance_blocked(x.data(), y.data(),
                                                   x.size());
}

void gemv(std::span<const float> a, std::size_t rows, std::size_t cols,
          std::span<const float> x, std::span<const float> bias,
          std::span<float> out) noexcept {
    assert(a.size() == rows * cols);
    assert(x.size() == cols);
    assert(out.size() >= rows);
    assert(bias.empty() || bias.size() >= rows);
    simd::active().gemv(a.data(), rows, cols, x.data(),
                        bias.empty() ? nullptr : bias.data(), out.data());
}

void gemv_transpose_accumulate(std::span<const float> a, std::size_t rows,
                               std::size_t cols, std::span<const float> d,
                               std::span<float> out) noexcept {
    assert(a.size() == rows * cols);
    assert(d.size() >= rows);
    assert(out.size() >= cols);
    simd::active().gemv_transpose_accumulate(a.data(), rows, cols, d.data(),
                                             out.data());
}

void outer_accumulate(std::span<const float> d, std::span<const float> x,
                      std::size_t rows, std::size_t cols,
                      std::span<float> y) noexcept {
    assert(d.size() >= rows);
    assert(x.size() == cols);
    assert(y.size() == rows * cols);
    simd::active().outer_accumulate(d.data(), x.data(), rows, cols, y.data());
}

void add_scaled_diff(float alpha, std::span<const float> x,
                     std::span<const float> z, std::span<float> y) noexcept {
    assert(x.size() == y.size());
    assert(z.size() == y.size());
    const std::size_t n = y.size();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        y[i] += alpha * (x[i] - z[i]);
        y[i + 1] += alpha * (x[i + 1] - z[i + 1]);
        y[i + 2] += alpha * (x[i + 2] - z[i + 2]);
        y[i + 3] += alpha * (x[i + 3] - z[i + 3]);
    }
    for (; i < n; ++i) y[i] += alpha * (x[i] - z[i]);
}

double cosine_distance(std::span<const float> x,
                       std::span<const float> y) noexcept {
    return cosine_distance_cached(x, y, norm2(x), norm2(y));
}

double cosine_distance_cached(std::span<const float> x,
                              std::span<const float> y, double norm_x,
                              double norm_y) noexcept {
    if (norm_x == 0.0 || norm_y == 0.0) return 1.0;
    double cosine = dot(x, y) / (norm_x * norm_y);
    // Clamp away floating-point drift so the result stays in [0, 2].
    if (cosine > 1.0) cosine = 1.0;
    if (cosine < -1.0) cosine = -1.0;
    return 1.0 - cosine;
}

std::vector<double> norms_of(std::span<const std::vector<float>> rows,
                             ThreadPool& pool) {
    std::vector<double> norms(rows.size());
    parallel_for(
        0, rows.size(), [&](std::size_t i) { norms[i] = norm2(rows[i]); },
        pool);
    return norms;
}

void cosine_distances_to(std::span<const std::vector<float>> rows,
                         std::span<const float> query,
                         std::span<double> out) noexcept {
    assert(rows.size() == out.size());
    const auto& kernels = simd::active();
    const double query_norm = norm2(query);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        // Fused dot+norm: one traversal of the row instead of the separate
        // norm2() and dot() passes.  The scalar table's fused kernel is two
        // strict chains, so this stays bit-identical to the old two-pass
        // body under the pinned default.
        double d = 0.0;
        double row_norm2 = 0.0;
        kernels.dot_and_norm(rows[i].data(), query.data(), rows[i].size(), &d,
                             &row_norm2);
        const double row_norm = std::sqrt(row_norm2);
        if (row_norm == 0.0 || query_norm == 0.0) {
            out[i] = 1.0;
            continue;
        }
        double cosine = d / (row_norm * query_norm);
        if (cosine > 1.0) cosine = 1.0;
        if (cosine < -1.0) cosine = -1.0;
        out[i] = 1.0 - cosine;
    }
}

void weighted_sum(std::span<const RowView> rows,
                  std::span<const double> weights, std::span<float> out,
                  ThreadPool& pool) {
    assert(rows.size() == weights.size());
#ifndef NDEBUG
    for (const auto& row : rows) assert(row.size() == out.size());
#endif
    // Dimension-split: each output element accumulates its rows strictly
    // in order inside one chunk, so the result matches the serial
    // row-major axpy loop bit-for-bit under any thread count.
    parallel_chunks(
        0, out.size(), kDimChunk,
        [&](std::size_t lo, std::size_t hi) {
            const auto slice = out.subspan(lo, hi - lo);
            fill(slice, 0.0F);
            for (std::size_t r = 0; r < rows.size(); ++r) {
                axpy(static_cast<float>(weights[r]),
                     rows[r].subspan(lo, hi - lo), slice);
            }
        },
        pool);
}

void mean_of(std::span<const RowView> rows, std::span<float> out,
             ThreadPool& pool) {
    if (rows.empty()) {
        fill(out, 0.0F);
        return;
    }
#ifndef NDEBUG
    for (const auto& row : rows) assert(row.size() == out.size());
#endif
    const float inv = 1.0F / static_cast<float>(rows.size());
    parallel_chunks(
        0, out.size(), kDimChunk,
        [&](std::size_t lo, std::size_t hi) {
            const auto slice = out.subspan(lo, hi - lo);
            fill(slice, 0.0F);
            for (const auto& row : rows)
                axpy(1.0F, row.subspan(lo, hi - lo), slice);
            scale(slice, inv);
        },
        pool);
}

namespace {

std::vector<RowView> views_of(std::span<const std::vector<float>> rows) {
    return {rows.begin(), rows.end()};
}

}  // namespace

void weighted_sum(std::span<const std::vector<float>> rows,
                  std::span<const double> weights, std::span<float> out,
                  ThreadPool& pool) {
    weighted_sum(views_of(rows), weights, out, pool);
}

void mean_of(std::span<const std::vector<float>> rows, std::span<float> out,
             ThreadPool& pool) {
    mean_of(views_of(rows), out, pool);
}

}  // namespace fairbfl::support
