#include "support/vecmath.hpp"

#include <cassert>
#include <cmath>

namespace fairbfl::support {

void axpy(float alpha, std::span<const float> x, std::span<float> y) noexcept {
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, float alpha) noexcept {
    for (auto& v : x) v *= alpha;
}

void fill(std::span<float> x, float value) noexcept {
    for (auto& v : x) v = value;
}

double dot(std::span<const float> x, std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    double acc = 0.0;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    return acc;
}

double norm2(std::span<const float> x) noexcept {
    return std::sqrt(dot(x, x));
}

double squared_distance(std::span<const float> x,
                        std::span<const float> y) noexcept {
    assert(x.size() == y.size());
    double acc = 0.0;
    const std::size_t n = x.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - static_cast<double>(y[i]);
        acc += d * d;
    }
    return acc;
}

double cosine_distance(std::span<const float> x,
                       std::span<const float> y) noexcept {
    const double nx = norm2(x);
    const double ny = norm2(y);
    if (nx == 0.0 || ny == 0.0) return 1.0;
    double cosine = dot(x, y) / (nx * ny);
    // Clamp away floating-point drift so the result stays in [0, 2].
    if (cosine > 1.0) cosine = 1.0;
    if (cosine < -1.0) cosine = -1.0;
    return 1.0 - cosine;
}

void weighted_sum(std::span<const std::vector<float>> rows,
                  std::span<const double> weights, std::span<float> out) {
    assert(rows.size() == weights.size());
    fill(out, 0.0F);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        assert(rows[r].size() == out.size());
        axpy(static_cast<float>(weights[r]), rows[r], out);
    }
}

void mean_of(std::span<const std::vector<float>> rows, std::span<float> out) {
    fill(out, 0.0F);
    if (rows.empty()) return;
    for (const auto& row : rows) {
        assert(row.size() == out.size());
        axpy(1.0F, row, out);
    }
    scale(out, 1.0F / static_cast<float>(rows.size()));
}

}  // namespace fairbfl::support
