#include "support/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fairbfl::support {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t root_seed, std::uint64_t stream,
              std::uint64_t round) noexcept {
    // Mix the three coordinates through SplitMix64 so that nearby ids give
    // unrelated states.
    std::uint64_t sm = root_seed;
    const std::uint64_t a = splitmix64(sm);
    sm ^= stream * 0x9E3779B97F4A7C15ULL;
    const std::uint64_t b = splitmix64(sm);
    sm ^= round * 0xD1342543DE82EF95ULL;
    const std::uint64_t c = splitmix64(sm);
    Rng rng(a ^ rotl(b, 17) ^ rotl(c, 43));
    // Warm up: decorrelates streams whose mixed seeds share low-bit structure.
    for (int i = 0; i < 4; ++i) (void)rng();
    return rng;
}

Rng::result_type Rng::operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53-bit mantissa trick: take the top 53 bits.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    assert(lo <= hi);
    const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full span
    // Unbiased rejection sampling (Lemire-style threshold).
    const std::uint64_t threshold = (~range + 1) % range;
    for (;;) {
        const std::uint64_t r = (*this)();
        if (r >= threshold) return lo + static_cast<std::int64_t>(r % range);
    }
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box-Muller; u1 is kept away from 0 so log() stays finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0x1.0p-60);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_normal_ = radius * std::sin(angle);
    has_cached_normal_ = true;
    return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
    assert(rate > 0.0);
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0x1.0p-60);
    return -std::log(u) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
    if (k > n) k = n;
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    // Partial Fisher-Yates: first k slots become the sample.
    for (std::size_t i = 0; i < k; ++i) {
        const auto j = static_cast<std::size_t>(
            uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(n) - 1));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

}  // namespace fairbfl::support
