#pragma once
// Tiny --key=value flag parser shared by benches and examples.
//
// Usage:
//   CliArgs args(argc, argv);
//   const int rounds = args.get_int("rounds", 100);
//   if (args.get_flag("paper")) { ... }
//   args.finish("bench_fig4_general");   // rejects unknown flags

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace fairbfl::support {

/// Comma-joins a range of names for "(known: ...)" diagnostics -- shared
/// by the registry error messages and CLI validation across layers.
template <typename Range>
[[nodiscard]] std::string join_names(const Range& names) {
    std::string out;
    for (const auto& name : names) {
        if (!out.empty()) out += ", ";
        out += name;
    }
    return out;
}

class CliArgs {
public:
    CliArgs(int argc, const char* const* argv);

    /// Value lookups; each records the key as "known" for finish().
    /// The numeric getters return the fallback and mark a parse error
    /// (failing finish()) when the value is not fully numeric -- a
    /// malformed `--rounds=abc` or bare `--rounds` never silently reads
    /// as 0.
    [[nodiscard]] std::string get_string(std::string_view key,
                                         std::string_view fallback);
    [[nodiscard]] std::int64_t get_int(std::string_view key,
                                       std::int64_t fallback);
    [[nodiscard]] double get_double(std::string_view key, double fallback);
    /// Boolean flag: present without value, or with =true/=false/=1/=0.
    [[nodiscard]] bool get_flag(std::string_view key, bool fallback = false);

    /// True when --help/-h was passed.
    [[nodiscard]] bool help_requested() const noexcept { return help_; }

    /// Prints unknown-flag diagnostics to stderr and returns false when any
    /// argument was not consumed by a get_* call; also false on parse errors.
    bool finish(std::string_view program_name) const;

private:
    std::map<std::string, std::string, std::less<>> values_;
    mutable std::map<std::string, bool, std::less<>> consumed_;
    bool help_ = false;
    bool parse_error_ = false;
};

}  // namespace fairbfl::support
