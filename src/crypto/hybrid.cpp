#include "crypto/hybrid.hpp"

#include <stdexcept>

namespace fairbfl::crypto {

namespace {

constexpr std::size_t kKeyBytes = 16;
constexpr std::size_t kNonceBytes = 8;

/// XORs `data` in place with the xoshiro256** keystream seeded by
/// (key, nonce).
void apply_keystream(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> nonce,
                     std::span<std::uint8_t> data) {
    // Derive the stream seed by hashing key || nonce (domain-separated).
    Sha256 hasher;
    hasher.update("fairbfl-hybrid-keystream");
    hasher.update(key);
    hasher.update(nonce);
    const Digest seed = hasher.finish();
    std::uint64_t seed64 = 0;
    for (int i = 0; i < 8; ++i)
        seed64 = (seed64 << 8) | seed[static_cast<std::size_t>(i)];

    support::Rng stream(seed64);
    std::size_t i = 0;
    while (i < data.size()) {
        const std::uint64_t word = stream();
        for (int b = 0; b < 8 && i < data.size(); ++b, ++i)
            data[i] ^= static_cast<std::uint8_t>(word >> (8 * b));
    }
}

Digest compute_tag(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> nonce,
                   std::span<const std::uint8_t> body) {
    Sha256 hasher;
    hasher.update("fairbfl-hybrid-tag");
    hasher.update(key);
    hasher.update(nonce);
    hasher.update(body);
    return hasher.finish();
}

}  // namespace

HybridCiphertext hybrid_encrypt(const RsaPublicKey& recipient,
                                std::span<const std::uint8_t> plaintext,
                                support::Rng& rng) {
    std::vector<std::uint8_t> key_and_nonce(kKeyBytes + kNonceBytes);
    for (auto& byte : key_and_nonce)
        byte = static_cast<std::uint8_t>(rng() & 0xFF);
    const auto key = std::span<const std::uint8_t>(key_and_nonce)
                         .first(kKeyBytes);
    const auto nonce = std::span<const std::uint8_t>(key_and_nonce)
                           .subspan(kKeyBytes);

    HybridCiphertext out;
    out.wrapped_key = encrypt(recipient, key_and_nonce);
    out.body.assign(plaintext.begin(), plaintext.end());
    apply_keystream(key, nonce, out.body);
    out.tag = compute_tag(key, nonce, out.body);
    return out;
}

std::vector<std::uint8_t> hybrid_decrypt(const RsaPrivateKey& key,
                                         const HybridCiphertext& ciphertext) {
    std::vector<std::uint8_t> key_and_nonce;
    try {
        key_and_nonce = decrypt(key, ciphertext.wrapped_key);
    } catch (const std::exception&) {
        throw std::runtime_error("hybrid_decrypt: key unwrap failed");
    }
    if (key_and_nonce.size() != kKeyBytes + kNonceBytes)
        throw std::runtime_error("hybrid_decrypt: malformed wrapped key");
    const auto sym_key =
        std::span<const std::uint8_t>(key_and_nonce).first(kKeyBytes);
    const auto nonce =
        std::span<const std::uint8_t>(key_and_nonce).subspan(kKeyBytes);

    if (compute_tag(sym_key, nonce, ciphertext.body) != ciphertext.tag)
        throw std::runtime_error("hybrid_decrypt: integrity tag mismatch");

    std::vector<std::uint8_t> plaintext = ciphertext.body;
    apply_keystream(sym_key, nonce, plaintext);
    return plaintext;
}

}  // namespace fairbfl::crypto
