#pragma once
// Hybrid encryption for gradient confidentiality.
//
// The paper (§4.2) notes "local gradients can be encrypted using RSA to
// ensure data privacy"; raw RSA cannot carry kilobytes of gradient, so --
// as in every deployed system -- the payload is encrypted under a fresh
// symmetric key and only the key travels under RSA.
//
// The symmetric primitive is a xoshiro256** keystream XOR with a SHA-256
// integrity tag (encrypt-then-MAC style).  This is a *simulation-grade*
// cipher: the protocol path (fresh key per message, key wrap, tag check,
// tamper rejection) is exactly what a production AES-GCM deployment would
// exercise; the primitive itself is not side-channel hardened.

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/rsa.hpp"
#include "support/rng.hpp"

namespace fairbfl::crypto {

struct HybridCiphertext {
    std::vector<std::uint8_t> wrapped_key;  ///< RSA(recipient, key || nonce)
    std::vector<std::uint8_t> body;         ///< keystream-XORed payload
    Digest tag{};                           ///< SHA-256(key || nonce || body)

    [[nodiscard]] std::size_t total_bytes() const noexcept {
        return wrapped_key.size() + body.size() + tag.size();
    }
};

/// Encrypts `plaintext` to the holder of `recipient`.  `rng` supplies the
/// fresh symmetric key and nonce (deterministic under the simulation's
/// stream discipline).
[[nodiscard]] HybridCiphertext hybrid_encrypt(
    const RsaPublicKey& recipient, std::span<const std::uint8_t> plaintext,
    support::Rng& rng);

/// Decrypts; throws std::runtime_error on key-unwrapping failure or tag
/// mismatch (tampered body).
[[nodiscard]] std::vector<std::uint8_t> hybrid_decrypt(
    const RsaPrivateKey& key, const HybridCiphertext& ciphertext);

}  // namespace fairbfl::crypto
