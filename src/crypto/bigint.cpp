#include "crypto/bigint.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace fairbfl::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigUint::BigUint(std::uint64_t value) {
    if (value != 0) limbs_.push_back(static_cast<std::uint32_t>(value));
    if (value >> 32) limbs_.push_back(static_cast<std::uint32_t>(value >> 32));
}

void BigUint::trim() noexcept {
    while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_hex(std::string_view hex) {
    BigUint out;
    if (hex.empty()) return out;
    out.limbs_.assign((hex.size() + 7) / 8, 0);
    std::size_t bit = 0;
    for (std::size_t i = hex.size(); i-- > 0;) {
        const char c = hex[i];
        std::uint32_t nibble = 0;
        if (c >= '0' && c <= '9') nibble = static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f') nibble = static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F') nibble = static_cast<std::uint32_t>(c - 'A' + 10);
        else throw std::invalid_argument("BigUint::from_hex: non-hex digit");
        out.limbs_[bit / 32] |= nibble << (bit % 32);
        bit += 4;
    }
    out.trim();
    return out;
}

BigUint BigUint::from_bytes_be(std::span<const std::uint8_t> bytes) {
    BigUint out;
    out.limbs_.assign((bytes.size() + 3) / 4, 0);
    std::size_t shift = 0;
    for (std::size_t i = bytes.size(); i-- > 0;) {
        out.limbs_[shift / 32] |=
            static_cast<std::uint32_t>(bytes[i]) << (shift % 32);
        shift += 8;
    }
    out.trim();
    return out;
}

std::string BigUint::to_hex() const {
    if (is_zero()) return "0";
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(limbs_.size() * 8);
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        for (int nib = 7; nib >= 0; --nib) {
            out += kHex[(limbs_[i] >> (4 * nib)) & 0xF];
        }
    }
    const auto first = out.find_first_not_of('0');
    return out.substr(first);
}

std::vector<std::uint8_t> BigUint::to_bytes_be(std::size_t width) const {
    if (bit_length() > width * 8)
        throw std::length_error("BigUint::to_bytes_be: value wider than width");
    std::vector<std::uint8_t> bytes(width, 0);
    for (std::size_t i = 0; i < width; ++i) {
        const std::size_t shift = 8 * i;
        const std::size_t limb = shift / 32;
        if (limb >= limbs_.size()) break;
        bytes[width - 1 - i] =
            static_cast<std::uint8_t>(limbs_[limb] >> (shift % 32));
    }
    return bytes;
}

std::size_t BigUint::bit_length() const noexcept {
    if (limbs_.empty()) return 0;
    const std::uint32_t top = limbs_.back();
    std::size_t bits = (limbs_.size() - 1) * 32;
    return bits + (32U - static_cast<std::size_t>(std::countl_zero(top)));
}

bool BigUint::bit(std::size_t i) const noexcept {
    const std::size_t limb = i / 32;
    if (limb >= limbs_.size()) return false;
    return (limbs_[limb] >> (i % 32)) & 1U;
}

std::uint64_t BigUint::low_u64() const noexcept {
    std::uint64_t v = limbs_.empty() ? 0 : limbs_[0];
    if (limbs_.size() > 1) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
    return v;
}

std::strong_ordering BigUint::operator<=>(const BigUint& rhs) const noexcept {
    if (limbs_.size() != rhs.limbs_.size())
        return limbs_.size() <=> rhs.limbs_.size();
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
    }
    return std::strong_ordering::equal;
}

BigUint BigUint::operator+(const BigUint& rhs) const {
    BigUint out;
    const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
    out.limbs_.reserve(n + 1);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = carry;
        if (i < limbs_.size()) sum += limbs_[i];
        if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
        out.limbs_.push_back(static_cast<std::uint32_t>(sum));
        carry = sum >> 32;
    }
    if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
    return out;
}

BigUint BigUint::operator-(const BigUint& rhs) const {
    assert(*this >= rhs && "BigUint subtraction would underflow");
    BigUint out;
    out.limbs_.reserve(limbs_.size());
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
        if (i < rhs.limbs_.size())
            diff -= static_cast<std::int64_t>(rhs.limbs_[i]);
        if (diff < 0) {
            diff += static_cast<std::int64_t>(kBase);
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.limbs_.push_back(static_cast<std::uint32_t>(diff));
    }
    out.trim();
    return out;
}

BigUint BigUint::operator*(const BigUint& rhs) const {
    if (is_zero() || rhs.is_zero()) return {};
    BigUint out;
    out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        std::uint64_t carry = 0;
        const std::uint64_t a = limbs_[i];
        for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
            std::uint64_t cur = out.limbs_[i + j] + a * rhs.limbs_[j] + carry;
            out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t k = i + rhs.limbs_.size();
        while (carry) {
            const std::uint64_t cur = out.limbs_[k] + carry;
            out.limbs_[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigUint BigUint::operator<<(std::size_t bits) const {
    if (is_zero() || bits == 0) {
        BigUint out = *this;
        return out;
    }
    const std::size_t limb_shift = bits / 32;
    const std::size_t bit_shift = bits % 32;
    BigUint out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i])
                                << bit_shift;
        out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
        out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
    }
    out.trim();
    return out;
}

BigUint BigUint::operator>>(std::size_t bits) const {
    const std::size_t limb_shift = bits / 32;
    if (limb_shift >= limbs_.size()) return {};
    const std::size_t bit_shift = bits % 32;
    BigUint out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
        std::uint64_t v =
            static_cast<std::uint64_t>(limbs_[i + limb_shift]) >> bit_shift;
        if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
            v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
                 << (32 - bit_shift);
        }
        out.limbs_[i] = static_cast<std::uint32_t>(v);
    }
    out.trim();
    return out;
}

BigUintDivMod BigUint::divmod(const BigUint& divisor) const {
    if (divisor.is_zero()) throw std::domain_error("BigUint division by zero");
    if (*this < divisor) return {BigUint{}, *this};

    // Single-limb divisor fast path.
    if (divisor.limbs_.size() == 1) {
        const std::uint64_t d = divisor.limbs_[0];
        BigUint quotient;
        quotient.limbs_.assign(limbs_.size(), 0);
        std::uint64_t rem = 0;
        for (std::size_t i = limbs_.size(); i-- > 0;) {
            const std::uint64_t cur = (rem << 32) | limbs_[i];
            quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
            rem = cur % d;
        }
        quotient.trim();
        return {std::move(quotient), BigUint(rem)};
    }

    // Knuth TAOCP vol.2 Algorithm D with base 2^32.
    const int shift = std::countl_zero(divisor.limbs_.back());
    const BigUint u = *this << static_cast<std::size_t>(shift);
    const BigUint v = divisor << static_cast<std::size_t>(shift);
    const std::size_t n = v.limbs_.size();
    const std::size_t m = u.limbs_.size() - n;

    std::vector<std::uint32_t> un(u.limbs_);
    un.push_back(0);  // u has m+n+1 digits after normalization
    const std::vector<std::uint32_t>& vn = v.limbs_;

    BigUint quotient;
    quotient.limbs_.assign(m + 1, 0);

    for (std::size_t j = m + 1; j-- > 0;) {
        // Estimate qhat = (un[j+n]*B + un[j+n-1]) / vn[n-1].
        const std::uint64_t numerator =
            (static_cast<std::uint64_t>(un[j + n]) << 32) | un[j + n - 1];
        std::uint64_t qhat = numerator / vn[n - 1];
        std::uint64_t rhat = numerator % vn[n - 1];
        while (qhat >= kBase ||
               qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
            --qhat;
            rhat += vn[n - 1];
            if (rhat >= kBase) break;
        }

        // Multiply-subtract qhat * v from u[j .. j+n].
        std::int64_t borrow = 0;
        std::uint64_t carry = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t product = qhat * vn[i] + carry;
            carry = product >> 32;
            std::int64_t diff = static_cast<std::int64_t>(un[i + j]) -
                                static_cast<std::int64_t>(product & 0xFFFFFFFF) -
                                borrow;
            if (diff < 0) {
                diff += static_cast<std::int64_t>(kBase);
                borrow = 1;
            } else {
                borrow = 0;
            }
            un[i + j] = static_cast<std::uint32_t>(diff);
        }
        std::int64_t top = static_cast<std::int64_t>(un[j + n]) -
                           static_cast<std::int64_t>(carry) - borrow;
        if (top < 0) {
            // qhat was one too large: add v back once.
            --qhat;
            std::uint64_t carry2 = 0;
            for (std::size_t i = 0; i < n; ++i) {
                const std::uint64_t sum = static_cast<std::uint64_t>(un[i + j]) +
                                          vn[i] + carry2;
                un[i + j] = static_cast<std::uint32_t>(sum);
                carry2 = sum >> 32;
            }
            top += static_cast<std::int64_t>(carry2) +
                   static_cast<std::int64_t>(kBase);
        }
        un[j + n] = static_cast<std::uint32_t>(top);
        quotient.limbs_[j] = static_cast<std::uint32_t>(qhat);
    }
    quotient.trim();

    BigUint remainder;
    remainder.limbs_.assign(un.begin(),
                            un.begin() + static_cast<std::ptrdiff_t>(n));
    remainder.trim();
    remainder = remainder >> static_cast<std::size_t>(shift);
    return {std::move(quotient), std::move(remainder)};
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic (odd modulus), used by mod_pow.

/// Montgomery context for a fixed odd modulus N with R = 2^(32*k).
class Montgomery {
public:
    explicit Montgomery(const BigUint& modulus) : n_(modulus) {
        k_ = n_.limbs_.size();
        // n' = -N^{-1} mod 2^32 via Newton iteration on 32-bit words.
        std::uint32_t inv = 1;
        const std::uint32_t n0 = n_.limbs_[0];
        for (int i = 0; i < 5; ++i) inv *= 2 - n0 * inv;  // inv = n0^{-1} mod 2^32
        nprime_ = ~inv + 1;  // -inv mod 2^32
        // R^2 mod N for conversions.
        BigUint r2 = BigUint(1) << (64 * k_);
        r2_ = r2 % n_;
    }

    /// Converts into Montgomery form: a * R mod N.
    [[nodiscard]] BigUint to_mont(const BigUint& a) const {
        return mul(a % n_, r2_);
    }
    /// Converts out of Montgomery form.
    [[nodiscard]] BigUint from_mont(const BigUint& a) const {
        return mul(a, BigUint(1));
    }

    /// Montgomery product: a * b * R^{-1} mod N (CIOS).
    [[nodiscard]] BigUint mul(const BigUint& a, const BigUint& b) const {
        std::vector<std::uint32_t> t(k_ + 2, 0);
        for (std::size_t i = 0; i < k_; ++i) {
            const std::uint64_t ai =
                i < a.limbs_.size() ? a.limbs_[i] : 0;
            // t += ai * b
            std::uint64_t carry = 0;
            for (std::size_t j = 0; j < k_; ++j) {
                const std::uint64_t bj =
                    j < b.limbs_.size() ? b.limbs_[j] : 0;
                const std::uint64_t cur = t[j] + ai * bj + carry;
                t[j] = static_cast<std::uint32_t>(cur);
                carry = cur >> 32;
            }
            std::uint64_t cur = t[k_] + carry;
            t[k_] = static_cast<std::uint32_t>(cur);
            t[k_ + 1] = static_cast<std::uint32_t>(cur >> 32);

            // m = t[0] * n' mod 2^32; t += m * N; t >>= 32
            const std::uint32_t m =
                static_cast<std::uint32_t>(t[0]) * nprime_;
            carry = 0;
            for (std::size_t j = 0; j < k_; ++j) {
                const std::uint64_t prod =
                    t[j] + static_cast<std::uint64_t>(m) * n_.limbs_[j] + carry;
                t[j] = static_cast<std::uint32_t>(prod);
                carry = prod >> 32;
            }
            cur = t[k_] + carry;
            t[k_] = static_cast<std::uint32_t>(cur);
            t[k_ + 1] += static_cast<std::uint32_t>(cur >> 32);
            // shift down one limb
            for (std::size_t j = 0; j < k_ + 1; ++j) t[j] = t[j + 1];
            t[k_ + 1] = 0;
        }
        BigUint result;
        result.limbs_.assign(t.begin(),
                             t.begin() + static_cast<std::ptrdiff_t>(k_ + 1));
        result.trim();
        if (result >= n_) result = result - n_;
        return result;
    }

    [[nodiscard]] const BigUint& modulus() const noexcept { return n_; }

private:
    BigUint n_;
    BigUint r2_;
    std::size_t k_ = 0;
    std::uint32_t nprime_ = 0;
};

BigUint BigUint::mod_pow(const BigUint& base, const BigUint& exponent,
                         const BigUint& modulus) {
    if (modulus.is_zero()) throw std::domain_error("mod_pow: zero modulus");
    if (modulus == BigUint(1)) return {};
    if (exponent.is_zero()) return BigUint(1);

    if (modulus.is_odd()) {
        const Montgomery mont(modulus);
        BigUint result = mont.to_mont(BigUint(1));
        BigUint acc = mont.to_mont(base);
        const std::size_t bits = exponent.bit_length();
        for (std::size_t i = 0; i < bits; ++i) {
            if (exponent.bit(i)) result = mont.mul(result, acc);
            if (i + 1 < bits) acc = mont.mul(acc, acc);
        }
        return mont.from_mont(result);
    }

    // Generic square-and-multiply with division-based reduction.
    BigUint result(1);
    BigUint acc = base % modulus;
    const std::size_t bits = exponent.bit_length();
    for (std::size_t i = 0; i < bits; ++i) {
        if (exponent.bit(i)) result = (result * acc) % modulus;
        if (i + 1 < bits) acc = (acc * acc) % modulus;
    }
    return result;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
    while (!b.is_zero()) {
        BigUint r = a % b;
        a = std::move(b);
        b = std::move(r);
    }
    return a;
}

std::optional<BigUint> BigUint::mod_inverse(const BigUint& a,
                                            const BigUint& m) {
    // Extended Euclid over non-negative values: track (old_r, r) and signed
    // Bezout coefficient for a as (sign, magnitude) pairs.
    BigUint old_r = a % m;
    BigUint r = m;
    BigUint old_s(1);
    BigUint s;
    bool old_s_neg = false;
    bool s_neg = false;

    while (!r.is_zero()) {
        const auto [q, rem] = old_r.divmod(r);
        old_r = std::move(r);
        r = rem;

        // new_s = old_s - q * s  (signed arithmetic on magnitudes)
        BigUint qs = q * s;
        BigUint new_s;
        bool new_s_neg = false;
        if (old_s_neg == s_neg) {
            if (old_s >= qs) {
                new_s = old_s - qs;
                new_s_neg = old_s_neg;
            } else {
                new_s = qs - old_s;
                new_s_neg = !old_s_neg;
            }
        } else {
            new_s = old_s + qs;
            new_s_neg = old_s_neg;
        }
        old_s = std::move(s);
        old_s_neg = s_neg;
        s = std::move(new_s);
        s_neg = new_s_neg;
    }

    if (old_r != BigUint(1)) return std::nullopt;  // not coprime
    BigUint inverse = old_s % m;
    if (old_s_neg && !inverse.is_zero()) inverse = m - inverse;
    return inverse;
}

BigUint BigUint::random_bits(std::size_t bits, support::Rng& rng) {
    if (bits == 0) return {};
    BigUint out;
    out.limbs_.assign((bits + 31) / 32, 0);
    for (auto& limb : out.limbs_)
        limb = static_cast<std::uint32_t>(rng());
    // Zero the excess bits, then force the top bit so the width is exact.
    const std::size_t top_bits = bits % 32 == 0 ? 32 : bits % 32;
    std::uint32_t mask = top_bits == 32
                             ? 0xFFFFFFFFU
                             : ((1U << top_bits) - 1U);
    out.limbs_.back() &= mask;
    out.limbs_.back() |= 1U << (top_bits - 1);
    out.trim();
    return out;
}

BigUint BigUint::random_below(const BigUint& bound, support::Rng& rng) {
    if (bound.is_zero())
        throw std::domain_error("random_below: zero bound");
    const std::size_t bits = bound.bit_length();
    for (;;) {
        BigUint candidate;
        candidate.limbs_.assign((bits + 31) / 32, 0);
        for (auto& limb : candidate.limbs_)
            limb = static_cast<std::uint32_t>(rng());
        const std::size_t top_bits = bits % 32 == 0 ? 32 : bits % 32;
        const std::uint32_t mask =
            top_bits == 32 ? 0xFFFFFFFFU : ((1U << top_bits) - 1U);
        candidate.limbs_.back() &= mask;
        candidate.trim();
        if (candidate < bound) return candidate;
    }
}

bool BigUint::is_probable_prime(const BigUint& n, int rounds,
                                support::Rng& rng) {
    static constexpr std::uint32_t kSmallPrimes[] = {
        2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43,
        47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103};
    if (n < BigUint(2)) return false;
    for (const std::uint32_t p : kSmallPrimes) {
        const BigUint bp(p);
        if (n == bp) return true;
        if ((n % bp).is_zero()) return false;
    }

    // n - 1 = d * 2^s with d odd.
    const BigUint n_minus_1 = n - BigUint(1);
    BigUint d = n_minus_1;
    std::size_t s = 0;
    while (!d.is_odd()) {
        d = d >> 1;
        ++s;
    }

    const BigUint two(2);
    const BigUint n_minus_3 = n - BigUint(3);
    for (int round = 0; round < rounds; ++round) {
        const BigUint a = random_below(n_minus_3, rng) + two;  // a in [2, n-2]
        BigUint x = mod_pow(a, d, n);
        if (x == BigUint(1) || x == n_minus_1) continue;
        bool witness = true;
        for (std::size_t i = 1; i < s; ++i) {
            x = (x * x) % n;
            if (x == n_minus_1) {
                witness = false;
                break;
            }
        }
        if (witness) return false;
    }
    return true;
}

BigUint BigUint::generate_prime(std::size_t bits, support::Rng& rng,
                                int mr_rounds) {
    if (bits < 8)
        throw std::invalid_argument("generate_prime: need >= 8 bits");
    for (;;) {
        BigUint candidate = random_bits(bits, rng);
        // Force odd.
        candidate.limbs_[0] |= 1U;
        if (is_probable_prime(candidate, mr_rounds, rng)) return candidate;
    }
}

}  // namespace fairbfl::crypto
