#pragma once
// Key registry for the BFL network (paper §4.2): "each client is assigned a
// unique private key according to its ID, and the corresponding public key
// will be held by the miners".

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "crypto/rsa.hpp"
#include "support/rng.hpp"

namespace fairbfl::crypto {

/// Identifier of a participant (client or miner) in the network.
using NodeId = std::uint32_t;

/// Holds every participant's key pair; miners query public keys, clients
/// query their own private key.  Key generation is deterministic from the
/// root seed so simulations are reproducible.
class KeyStore {
public:
    /// `key_bits == 0` disables cryptography entirely: signing returns empty
    /// signatures and verification always succeeds.  This models the paper's
    /// flexibility knob -- the crypto layer can be scaled out for pure-FL
    /// deployments without touching call sites.
    explicit KeyStore(std::uint64_t root_seed, std::size_t key_bits = 512);

    /// Creates (or returns the existing) key pair for `id`.
    void register_node(NodeId id);

    [[nodiscard]] bool has_node(NodeId id) const noexcept;
    [[nodiscard]] bool crypto_enabled() const noexcept { return key_bits_ != 0; }

    /// Public key lookup (throws std::out_of_range on unknown id when crypto
    /// is enabled).
    [[nodiscard]] const RsaPublicKey& public_key(NodeId id) const;

    /// Private key lookup.  Simulation-only convenience: the simulator
    /// plays every node in-process, so "the node's own key" lives here.  A
    /// real deployment would never centralize private keys.
    [[nodiscard]] const RsaPrivateKey& private_key(NodeId id) const;

    /// Signs `payload` with the node's private key; empty when disabled.
    [[nodiscard]] RsaSignature sign(NodeId id,
                                    std::span<const std::uint8_t> payload) const;

    /// Verifies a signature allegedly from `id`.  Always true when crypto is
    /// disabled; false for unknown ids.
    [[nodiscard]] bool verify(NodeId id, std::span<const std::uint8_t> payload,
                              std::span<const std::uint8_t> signature) const;

    [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }

private:
    std::uint64_t root_seed_;
    std::size_t key_bits_;
    std::unordered_map<NodeId, RsaKeyPair> keys_;
};

}  // namespace fairbfl::crypto
