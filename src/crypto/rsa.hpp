#pragma once
// Textbook-RSA identity layer (paper §4.2 / Figure 2).
//
// Each client holds a private key derived from its ID; miners hold the
// matching public keys and verify every gradient transaction's signature
// before accepting it.  Signatures are RSASSA-PKCS1-v1.5-style over a
// SHA-256 digest (EMSA padding 0x00 0x01 0xFF.. 0x00 || digest).
//
// Key sizes default to 512 bits: in this *simulation* substrate the RSA
// layer exists to exercise the protocol path (sign -> verify -> reject on
// tamper), not to resist real adversaries; 512-bit keygen keeps the
// simulator fast on one core.  Sizes up to 2048 bits work and are covered
// by tests.

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/bigint.hpp"
#include "crypto/sha256.hpp"
#include "support/rng.hpp"

namespace fairbfl::crypto {

struct RsaPublicKey {
    BigUint n;  ///< modulus
    BigUint e;  ///< public exponent (65537)

    /// Modulus size in whole bytes (ceil).
    [[nodiscard]] std::size_t modulus_bytes() const {
        return (n.bit_length() + 7) / 8;
    }
};

struct RsaPrivateKey {
    BigUint n;  ///< modulus
    BigUint d;  ///< private exponent

    [[nodiscard]] std::size_t modulus_bytes() const {
        return (n.bit_length() + 7) / 8;
    }
};

struct RsaKeyPair {
    RsaPublicKey pub;
    RsaPrivateKey priv;
};

/// Generates an RSA key pair with a modulus of exactly `bits` bits
/// (p and q are bits/2-bit primes; regenerated until the product has the
/// requested width and e is invertible).  Deterministic given `rng`.
[[nodiscard]] RsaKeyPair generate_keypair(std::size_t bits, support::Rng& rng);

/// An RSA signature: the integer s = EMSA(digest)^d mod n, serialized
/// big-endian at modulus width.
using RsaSignature = std::vector<std::uint8_t>;

/// Signs a SHA-256 digest.
[[nodiscard]] RsaSignature sign_digest(const RsaPrivateKey& key,
                                       const Digest& digest);

/// Verifies a signature over a SHA-256 digest.  Constant-shape: returns
/// false on any mismatch (wrong key, tampered message, malformed length).
[[nodiscard]] bool verify_digest(const RsaPublicKey& key, const Digest& digest,
                                 std::span<const std::uint8_t> signature);

/// Convenience: sign/verify a raw byte payload (hashes internally).
[[nodiscard]] RsaSignature sign_payload(const RsaPrivateKey& key,
                                        std::span<const std::uint8_t> payload);
[[nodiscard]] bool verify_payload(const RsaPublicKey& key,
                                  std::span<const std::uint8_t> payload,
                                  std::span<const std::uint8_t> signature);

/// Raw RSA encryption of a short message (must be numerically < n).  The
/// paper mentions gradients "can be encrypted using RSA"; in practice one
/// encrypts a symmetric key -- this primitive models that handshake.
[[nodiscard]] std::vector<std::uint8_t> encrypt(
    const RsaPublicKey& key, std::span<const std::uint8_t> message);
[[nodiscard]] std::vector<std::uint8_t> decrypt(
    const RsaPrivateKey& key, std::span<const std::uint8_t> ciphertext);

}  // namespace fairbfl::crypto
