#pragma once
// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for block hashing, the proof-of-work puzzle (paper Eq. 4:
// H(nonce + Block) < Target), Merkle trees, and as the digest inside RSA
// signatures (Figure 2).

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace fairbfl::crypto {

/// A 256-bit digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
public:
    Sha256() noexcept { reset(); }

    void reset() noexcept;
    void update(std::span<const std::uint8_t> data) noexcept;
    void update(std::string_view text) noexcept;
    /// Finalizes and returns the digest.  The hasher must be reset() before
    /// reuse.
    [[nodiscard]] Digest finish() noexcept;

    /// One-shot helpers.
    [[nodiscard]] static Digest hash(std::span<const std::uint8_t> data) noexcept;
    [[nodiscard]] static Digest hash(std::string_view text) noexcept;

private:
    void process_block(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 8> state_{};
    std::array<std::uint8_t, 64> buffer_{};
    std::size_t buffer_len_ = 0;
    std::uint64_t total_bits_ = 0;
};

/// Lowercase hex rendering of a digest.
[[nodiscard]] std::string to_hex(const Digest& digest);

/// Interprets the first 8 bytes of the digest as a big-endian integer;
/// used to compare a block hash against the PoW target (Eq. 4).
[[nodiscard]] std::uint64_t leading64(const Digest& digest) noexcept;

/// Number of leading zero bits of the digest (a convenience for difficulty
/// assertions in tests).
[[nodiscard]] int leading_zero_bits(const Digest& digest) noexcept;

}  // namespace fairbfl::crypto
