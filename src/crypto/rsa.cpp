#include "crypto/rsa.hpp"

#include <stdexcept>

namespace fairbfl::crypto {

namespace {

constexpr std::uint64_t kPublicExponent = 65537;

/// EMSA-PKCS1-v1.5 style encoding of a SHA-256 digest into `width` bytes:
/// 0x00 0x01 0xFF...0xFF 0x00 || digest.  Requires width >= digest + 11.
BigUint emsa_encode(const Digest& digest, std::size_t width) {
    if (width < digest.size() + 11)
        throw std::length_error("RSA modulus too small for EMSA encoding");
    std::vector<std::uint8_t> em(width, 0xFF);
    em[0] = 0x00;
    em[1] = 0x01;
    em[width - digest.size() - 1] = 0x00;
    std::copy(digest.begin(), digest.end(),
              em.begin() + static_cast<std::ptrdiff_t>(width - digest.size()));
    return BigUint::from_bytes_be(em);
}

}  // namespace

RsaKeyPair generate_keypair(std::size_t bits, support::Rng& rng) {
    if (bits < 96 || bits % 2 != 0)
        throw std::invalid_argument(
            "generate_keypair: modulus must be an even bit count >= 96");
    const BigUint e(kPublicExponent);
    const std::size_t half = bits / 2;
    for (;;) {
        const BigUint p = BigUint::generate_prime(half, rng);
        BigUint q = BigUint::generate_prime(half, rng);
        if (p == q) continue;
        const BigUint n = p * q;
        if (n.bit_length() != bits) continue;  // product lost a bit; retry
        const BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
        const auto d = BigUint::mod_inverse(e, phi);
        if (!d.has_value()) continue;  // gcd(e, phi) != 1; retry
        return RsaKeyPair{RsaPublicKey{n, e}, RsaPrivateKey{n, *d}};
    }
}

RsaSignature sign_digest(const RsaPrivateKey& key, const Digest& digest) {
    const std::size_t width = key.modulus_bytes();
    const BigUint m = emsa_encode(digest, width);
    const BigUint s = BigUint::mod_pow(m, key.d, key.n);
    return s.to_bytes_be(width);
}

bool verify_digest(const RsaPublicKey& key, const Digest& digest,
                   std::span<const std::uint8_t> signature) {
    const std::size_t width = key.modulus_bytes();
    if (signature.size() != width) return false;
    const BigUint s = BigUint::from_bytes_be(signature);
    if (s >= key.n) return false;
    const BigUint m = BigUint::mod_pow(s, key.e, key.n);
    try {
        return m == emsa_encode(digest, width);
    } catch (const std::length_error&) {
        return false;
    }
}

RsaSignature sign_payload(const RsaPrivateKey& key,
                          std::span<const std::uint8_t> payload) {
    return sign_digest(key, Sha256::hash(payload));
}

bool verify_payload(const RsaPublicKey& key,
                    std::span<const std::uint8_t> payload,
                    std::span<const std::uint8_t> signature) {
    return verify_digest(key, Sha256::hash(payload), signature);
}

std::vector<std::uint8_t> encrypt(const RsaPublicKey& key,
                                  std::span<const std::uint8_t> message) {
    const std::size_t width = key.modulus_bytes();
    if (message.size() + 1 > width)
        throw std::length_error("RSA encrypt: message too long for modulus");
    // Prefix a 0x01 byte so leading zero bytes of the message survive the
    // integer round-trip.
    std::vector<std::uint8_t> padded;
    padded.reserve(message.size() + 1);
    padded.push_back(0x01);
    padded.insert(padded.end(), message.begin(), message.end());
    const BigUint m = BigUint::from_bytes_be(padded);
    if (m >= key.n) throw std::length_error("RSA encrypt: message >= modulus");
    return BigUint::mod_pow(m, key.e, key.n).to_bytes_be(width);
}

std::vector<std::uint8_t> decrypt(const RsaPrivateKey& key,
                                  std::span<const std::uint8_t> ciphertext) {
    if (ciphertext.size() != key.modulus_bytes())
        throw std::length_error("RSA decrypt: bad ciphertext length");
    const BigUint c = BigUint::from_bytes_be(ciphertext);
    const BigUint m = BigUint::mod_pow(c, key.d, key.n);
    std::vector<std::uint8_t> bytes =
        m.to_bytes_be((m.bit_length() + 7) / 8);
    if (bytes.empty() || bytes[0] != 0x01)
        throw std::runtime_error("RSA decrypt: padding marker missing");
    bytes.erase(bytes.begin());
    return bytes;
}

}  // namespace fairbfl::crypto
