#pragma once
// Arbitrary-precision unsigned integers, from scratch.
//
// This is the arithmetic substrate for the RSA identity layer (paper §4.2,
// Figure 2).  Limbs are little-endian uint32 so schoolbook multiplication
// and Knuth Algorithm D division can use 64-bit intermediates; modular
// exponentiation uses Montgomery multiplication for odd moduli (always the
// case for RSA) with a square-and-multiply fallback otherwise.

#include <compare>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"

namespace fairbfl::crypto {

class BigUint;

/// Result of BigUint::divmod.
struct BigUintDivMod;

class BigUint {
public:
    /// Zero.
    BigUint() = default;
    /// From a machine word.
    explicit BigUint(std::uint64_t value);

    /// Parses lowercase/uppercase hex (no 0x prefix).  Throws
    /// std::invalid_argument on non-hex input.
    [[nodiscard]] static BigUint from_hex(std::string_view hex);
    /// Big-endian byte import (e.g. a SHA-256 digest).
    [[nodiscard]] static BigUint from_bytes_be(std::span<const std::uint8_t> bytes);

    /// Lowercase hex, no leading zeros ("0" for zero).
    [[nodiscard]] std::string to_hex() const;
    /// Big-endian bytes, exactly `width` long (throws std::length_error when
    /// the value does not fit).
    [[nodiscard]] std::vector<std::uint8_t> to_bytes_be(std::size_t width) const;

    [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
    [[nodiscard]] bool is_odd() const noexcept {
        return !limbs_.empty() && (limbs_[0] & 1U);
    }
    /// Number of significant bits (0 for zero).
    [[nodiscard]] std::size_t bit_length() const noexcept;
    /// Value of bit i (0 = least significant).
    [[nodiscard]] bool bit(std::size_t i) const noexcept;
    /// Low 64 bits.
    [[nodiscard]] std::uint64_t low_u64() const noexcept;

    [[nodiscard]] std::strong_ordering operator<=>(const BigUint& rhs) const noexcept;
    [[nodiscard]] bool operator==(const BigUint& rhs) const noexcept = default;

    [[nodiscard]] BigUint operator+(const BigUint& rhs) const;
    /// Requires *this >= rhs (asserts in debug; wraps would be a logic bug).
    [[nodiscard]] BigUint operator-(const BigUint& rhs) const;
    [[nodiscard]] BigUint operator*(const BigUint& rhs) const;
    [[nodiscard]] BigUint operator<<(std::size_t bits) const;
    [[nodiscard]] BigUint operator>>(std::size_t bits) const;

    /// Quotient and remainder; divisor must be non-zero.
    [[nodiscard]] BigUintDivMod divmod(const BigUint& divisor) const;
    [[nodiscard]] BigUint operator/(const BigUint& rhs) const;
    [[nodiscard]] BigUint operator%(const BigUint& rhs) const;

    /// (base^exponent) mod modulus; modulus must be non-zero.
    [[nodiscard]] static BigUint mod_pow(const BigUint& base,
                                         const BigUint& exponent,
                                         const BigUint& modulus);

    [[nodiscard]] static BigUint gcd(BigUint a, BigUint b);

    /// Multiplicative inverse of a modulo m, or nullopt when gcd(a,m) != 1.
    [[nodiscard]] static std::optional<BigUint> mod_inverse(const BigUint& a,
                                                            const BigUint& m);

    /// Uniformly random integer with exactly `bits` bits (MSB forced to 1).
    [[nodiscard]] static BigUint random_bits(std::size_t bits,
                                             support::Rng& rng);
    /// Uniform in [0, bound) via rejection; bound must be non-zero.
    [[nodiscard]] static BigUint random_below(const BigUint& bound,
                                              support::Rng& rng);

    /// Miller-Rabin with `rounds` random bases (deterministic trial division
    /// by small primes first).
    [[nodiscard]] static bool is_probable_prime(const BigUint& n, int rounds,
                                                support::Rng& rng);
    /// Random odd prime with exactly `bits` bits.
    [[nodiscard]] static BigUint generate_prime(std::size_t bits,
                                                support::Rng& rng,
                                                int mr_rounds = 20);

private:
    friend class Montgomery;
    void trim() noexcept;

    std::vector<std::uint32_t> limbs_;  // little-endian, trimmed
};

struct BigUintDivMod {
    BigUint quotient;
    BigUint remainder;
};

inline BigUint BigUint::operator/(const BigUint& rhs) const {
    return divmod(rhs).quotient;
}
inline BigUint BigUint::operator%(const BigUint& rhs) const {
    return divmod(rhs).remainder;
}

}  // namespace fairbfl::crypto
