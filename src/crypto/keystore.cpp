#include "crypto/keystore.hpp"

#include <stdexcept>

namespace fairbfl::crypto {

KeyStore::KeyStore(std::uint64_t root_seed, std::size_t key_bits)
    : root_seed_(root_seed), key_bits_(key_bits) {}

void KeyStore::register_node(NodeId id) {
    if (!crypto_enabled() || keys_.contains(id)) return;
    // Stream 0x4B45 ("KE") namespaces key-generation randomness away from
    // the simulation streams.
    auto rng = support::Rng::fork(root_seed_, 0x4B450000ULL + id);
    keys_.emplace(id, generate_keypair(key_bits_, rng));
}

bool KeyStore::has_node(NodeId id) const noexcept {
    return keys_.contains(id);
}

const RsaPublicKey& KeyStore::public_key(NodeId id) const {
    return keys_.at(id).pub;
}

const RsaPrivateKey& KeyStore::private_key(NodeId id) const {
    return keys_.at(id).priv;
}

RsaSignature KeyStore::sign(NodeId id,
                            std::span<const std::uint8_t> payload) const {
    if (!crypto_enabled()) return {};
    const auto it = keys_.find(id);
    if (it == keys_.end())
        throw std::out_of_range("KeyStore::sign: unknown node id");
    return sign_payload(it->second.priv, payload);
}

bool KeyStore::verify(NodeId id, std::span<const std::uint8_t> payload,
                      std::span<const std::uint8_t> signature) const {
    if (!crypto_enabled()) return true;
    const auto it = keys_.find(id);
    if (it == keys_.end()) return false;
    return verify_payload(it->second.pub, payload, signature);
}

}  // namespace fairbfl::crypto
