#pragma once
// Reward ledger: the durable record of Algorithm 2's reward list.
//
// In the chain, rewards live as kReward transactions inside each round's
// block; this ledger is the queryable index over them (total per client,
// per-round history, top contributors) that an adopter's billing or
// reputation system would consume.

#include <cstdint>
#include <map>
#include <vector>

#include "incentive/contribution.hpp"

namespace fairbfl::incentive {

struct RewardEntry {
    std::uint64_t round = 0;
    fl::NodeId client = 0;
    double amount = 0.0;
};

class RewardLedger {
public:
    /// Records every positive reward in the report under `round`.
    void record(std::uint64_t round, const ContributionReport& report);
    /// Records a single entry (e.g. replayed from chain transactions).
    void record_entry(RewardEntry entry);
    /// Replaces `round`'s entries with the report's (retroactive
    /// settlement of late gradients, core/round_engine.hpp): the round's
    /// previous rewards are removed from the history and totals, then the
    /// report is recorded in their place, so per-round budget
    /// conservation still holds after an amendment.  Returns how many
    /// entries were removed.
    std::size_t amend_round(std::uint64_t round,
                            const ContributionReport& report);

    [[nodiscard]] double total_for(fl::NodeId client) const;
    [[nodiscard]] double grand_total() const;
    [[nodiscard]] std::size_t rounds_recorded() const noexcept {
        return rounds_seen_.size();
    }
    [[nodiscard]] const std::vector<RewardEntry>& history() const noexcept {
        return history_;
    }

    /// Clients sorted by cumulative reward, descending (ties by id).
    [[nodiscard]] std::vector<std::pair<fl::NodeId, double>> leaderboard()
        const;

private:
    std::vector<RewardEntry> history_;
    std::map<fl::NodeId, double> totals_;
    std::map<std::uint64_t, bool> rounds_seen_;
};

}  // namespace fairbfl::incentive
