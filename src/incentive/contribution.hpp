#pragma once
// Client's Contribution Identification -- the paper's Algorithm 2.
//
// Given the round's gradient set W (one update per client) and the
// provisional global update w_{r+1} (the simple average of Algorithm 1
// line 24):
//   1. cluster W ∪ {w_{r+1}} with a pluggable clustering algorithm
//      (DBSCAN by default);
//   2. clients in the global update's cluster are *high contribution*;
//      their theta_i = cosine_distance(w_i, w_{r+1}) becomes both the
//      reward share theta_i / sum_k theta_k * base and the fair-aggregation
//      weight p_i (Eq. 1);
//   3. clients outside are *low contribution* and the configured strategy
//      applies: keep them (weights still via Eq. 1) or discard them and
//      recompute the global update from the high contributors only.
//
// Forged gradients land far from the honest cluster, so the discard
// strategy doubles as the malicious-attack defense evaluated in Table 2.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/clustering.hpp"
#include "cluster/index.hpp"
#include "cluster/index_cache.hpp"
#include "cluster/registry.hpp"
#include "fl/aggregation.hpp"
#include "fl/gradient.hpp"
#include "fl/sharding.hpp"

namespace fairbfl::incentive {

/// What to do with low-contribution clients (paper §3.2: "two strategies").
enum class LowContributionStrategy : std::uint8_t {
    kKeepAll = 0,  ///< keep all gradients in the aggregation
    kDiscard = 1,  ///< drop them and recalculate the global update
};

struct ContributionConfig {
    /// Clustering backend, resolved by key in
    /// cluster::ClusteringRegistry::global() ("dbscan" -- the paper's
    /// default -- or "kmeans", or anything registered at startup).
    std::string clustering = "dbscan";
    /// Neighborhood/distance backend, resolved by key in
    /// cluster::IndexRegistry::global(): "exact" (dense matrix,
    /// bit-identical to the pre-index pipeline), "lazy" (zero build,
    /// per-query exact distances), "random_projection" (JL sketches,
    /// O(n d k) build), or "sampled" (pivot signatures, O(n m) memory).
    /// "auto" (the default) defers to the clustering algorithm's
    /// preferred_index() -- "exact" for DBSCAN's dense scan, "lazy" for
    /// k-means' seed-only touches -- so each algorithm keeps its
    /// pre-GradientIndex cost profile unless a backend is pinned.
    std::string index = "auto";
    LowContributionStrategy strategy = LowContributionStrategy::kKeepAll;
    /// Clustering metric defaults to Euclidean over the round's effective
    /// gradients: forged/low-quality gradients separate by *magnitude and
    /// direction* there, whereas cosine distance degenerates under non-IID
    /// data (honest shard directions are already near-orthogonal).  The
    /// reward weight theta stays cosine, as Algorithm 2 prescribes.
    /// Adaptive eps (on by default here, off in raw DbscanParams) keeps
    /// detection working as gradients concentrate with convergence.
    cluster::DbscanParams dbscan{.eps = 0.05,
                                 .min_pts = 3,
                                 .metric = cluster::Metric::kEuclidean,
                                 .adaptive_eps = true,
                                 .adaptive_eps_scale = 2.0};
    cluster::KMeansParams kmeans;
    /// Tuning for the selected index backend (projection dims, pivot
    /// count, internal seed).  The metric field is overwritten at build
    /// time with the clustering algorithm's preferred metric, so index and
    /// scan always agree on the geometry.
    cluster::IndexParams index_params;
    /// The paper's `base` reward multiplier per round.
    double reward_base = 1.0;
    /// Cross-round index cache (cluster/index_cache.hpp).  Null skips
    /// caching and rebuilds every round.  The contribution policies
    /// (core/strategies.cpp) install one per system, so consecutive
    /// rounds with an updatable backend maintain the index incrementally;
    /// exact/lazy backends rebuild regardless, keeping pinned series
    /// intact.  Shared so hierarchical per-shard config copies reuse one
    /// cache under distinct slots.
    std::shared_ptr<cluster::IndexCache> index_cache;
    /// This pass's slot in the cache (hierarchical.cpp gives the root
    /// pass and every shard pass their own).
    std::size_t index_slot = 0;
    /// Hierarchical shard tree (fl/sharding.hpp): `shards > 1` splits the
    /// round into that many independent shard-level Algorithm 2 passes
    /// plus a root pass over the shard summaries
    /// (incentive/hierarchical.hpp), capping per-pass index memory at the
    /// shard size.  The default (1) keeps the flat single-pass pipeline
    /// bit-for-bit.
    fl::ShardingConfig sharding;
};

/// Per-client outcome of Algorithm 2.
struct ClientContribution {
    fl::NodeId client = 0;
    double theta = 0.0;     ///< cosine distance to the provisional global
    bool high = false;      ///< labelled high contribution
    double reward = 0.0;    ///< theta_i / sum theta_k * base (high only)
};

/// Round-level outcome.
struct ContributionReport {
    std::vector<ClientContribution> entries;  ///< one per update, same order
    std::vector<std::size_t> high_indices;    ///< indices into the update set
    std::vector<std::size_t> low_indices;
    int global_cluster = cluster::ClusterResult::kNoise;
    cluster::ClusterResult clustering;        ///< labels: updates then global
    /// Index backend that served this round (diagnostics / perf JSON).
    std::string index_backend;
    /// Host wall seconds spent building the index -- a sub-component of
    /// the round's cluster-stage wall time (core::StageWall::index_build).
    /// Hierarchical rounds sum every pass's build here.
    double index_build_seconds = 0.0;
    /// Peak GradientIndex::storage_bytes() of any single pass this round:
    /// the flat pipeline's one index, or -- under the shard tree -- the
    /// largest shard/root pass.  The per-process memory ceiling the
    /// hierarchy exists to cap (perf JSON `index_peak_bytes`).
    std::size_t index_peak_bytes = 0;

    // --- Shard-tree extras (incentive/hierarchical.hpp).  Flat rounds
    // leave them at their defaults.
    /// Number of shard-level passes (1 = flat pipeline).
    std::size_t shard_count = 1;
    /// Wall seconds summed over the shard-level passes / spent in the
    /// root pass (sub-components of the cluster stage, like index_build).
    double shard_seconds = 0.0;
    double root_seconds = 0.0;
    /// Root-level settled global update: Eq. 1 over the shard summaries
    /// with the hierarchical weights already folded in.  When non-empty,
    /// apply_strategy (and the default reward policy) return it directly
    /// instead of re-running flat Eq. 1 over individual updates.
    std::vector<float> settled_weights;

    /// Client ids labelled low contribution (the "drop index" of Table 2).
    [[nodiscard]] std::vector<fl::NodeId> low_clients() const;
    /// Sum of rewards issued this round (== base when any high exists).
    [[nodiscard]] double total_reward() const;
};

/// Runs Algorithm 2 against the provisional global update.
///
/// `reference` (optional) is the *previous* round's global weights w_r.
/// When supplied, clustering and theta operate on the round's effective
/// gradients w_i - w_r instead of the raw weight vectors.  This matters in
/// practice: every uploaded weight vector shares the large w_r component,
/// so cosine geometry on raw weights degenerates as training progresses,
/// while the deltas keep exactly the honest-vs-forged structure the paper's
/// clustering argument relies on.
[[nodiscard]] ContributionReport identify_contributions(
    std::span<const fl::GradientUpdate> updates,
    std::span<const float> provisional_global,
    const ContributionConfig& config,
    std::span<const float> reference = {});

/// Below this theta sum the round's geometry is degenerate (every
/// surviving update coincides with the global) and Eq. 1 is undefined.
inline constexpr double kDegenerateThetaSum = 1e-12;

/// The strategy's surviving updates paired with their theta weights --
/// the shared selection step of apply_strategy and any custom combine
/// (core::RewardPolicy implementations).
struct SurvivorSelection {
    std::vector<fl::GradientUpdate> updates;
    std::vector<double> theta;
    double theta_sum = 0.0;

    /// True when theta carries no usable signal (see kDegenerateThetaSum).
    [[nodiscard]] bool degenerate() const noexcept {
        return theta_sum <= kDegenerateThetaSum;
    }
};

/// Applies the strategy to pick the surviving updates and collects their
/// theta scores.
[[nodiscard]] SurvivorSelection select_survivors(
    std::span<const fl::GradientUpdate> updates,
    const ContributionReport& report, LowContributionStrategy strategy);

/// Applies the configured strategy and Eq. 1:
///  * kKeepAll  -> fair-aggregate every update with theta weights;
///  * kDiscard  -> fair-aggregate the high-contribution updates only
///    (falls back to all updates if none were labelled high).
/// Degenerate theta (all ~0, e.g. every update identical) falls back to the
/// simple average.  A report carrying a hierarchical settlement
/// (`settled_weights` non-empty) short-circuits to it: the shard tree has
/// already combined per level.
[[nodiscard]] std::vector<float> apply_strategy(
    std::span<const fl::GradientUpdate> updates,
    const ContributionReport& report, LowContributionStrategy strategy);

/// Indices (into `updates`) that survive the strategy -- used by the BFL
/// core to know which clients still participate.
[[nodiscard]] std::vector<std::size_t> surviving_indices(
    std::size_t update_count, const ContributionReport& report,
    LowContributionStrategy strategy);

}  // namespace fairbfl::incentive
