#include "incentive/hierarchical.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace fairbfl::incentive {

namespace {

/// What one shard-level pass forwards upward.
struct ShardOutcome {
    ContributionReport report;     ///< the shard's flat Algorithm 2 pass
    std::vector<float> summary;    ///< Eq. 1 combine of its survivors
    ShardPassStats stats;
};

ShardPassStats stats_of(std::size_t shard, const ContributionReport& report,
                        double seconds) {
    ShardPassStats stats;
    stats.shard = shard;
    stats.points = report.entries.size() + 1;  // + the provisional global
    stats.high = report.high_indices.size();
    stats.index_backend = report.index_backend;
    stats.seconds = seconds;
    stats.index_build_seconds = report.index_build_seconds;
    stats.index_bytes = report.index_peak_bytes;
    return stats;
}

}  // namespace

HierarchicalReport identify_contributions_hierarchical(
    std::span<const fl::GradientUpdate> updates,
    std::span<const float> provisional_global,
    const ContributionConfig& config, std::span<const float> reference,
    support::ThreadPool& pool) {
    HierarchicalReport result;
    const fl::ShardTree tree(config.sharding);
    const std::size_t shards = tree.shard_count(updates.size());
    if (shards <= 1) {
        // Flat fallback: requested off, or the round is too small to
        // split.  Identical call, identical arithmetic -- the shards=1
        // configuration is the flat pipeline bit-for-bit.
        result.report = identify_contributions(updates, provisional_global,
                                               config, reference);
        return result;
    }

    // --- Shard level: S independent flat passes, fanned out on the pool.
    // Each worker writes only its own preallocated slot, so results are
    // deterministic at any pool size.
    const std::vector<fl::ShardRange> plan = tree.plan(updates.size());
    std::vector<ShardOutcome> outcomes(shards);
    // Captured *here*, on the round's thread: workers inherit the round's
    // session/round tags and parent their shard-pass spans under the
    // caller's open span, reconstructing the cross-thread fan-out in the
    // decoded log.
    const telemetry::Context ctx = telemetry::current_context();
    support::parallel_for(
        0, shards,
        [&](std::size_t s) {
            const telemetry::ContextScope scope(
                ctx.with_item(static_cast<std::uint32_t>(s)));
            telemetry::Span span(telemetry::labels::shard_pass());
            const std::span<const fl::GradientUpdate> shard_updates =
                updates.subspan(plan[s].begin, plan[s].size());
            ShardOutcome& outcome = outcomes[s];
            // Concurrent passes share the round's IndexCache, so each
            // shard pass gets a slot of its own (the root uses slot 1;
            // slot 0 is the flat pipeline's).
            ContributionConfig shard_config = config;
            shard_config.index_slot = 2 + s;
            outcome.report = identify_contributions(
                shard_updates, provisional_global, shard_config, reference);
            outcome.summary = apply_strategy(shard_updates, outcome.report,
                                             config.strategy);
            outcome.stats = stats_of(s, outcome.report, span.close());
        },
        pool);

    // --- Root level: the S survivor summaries are pseudo-updates; the
    // same flat pass clusters them against the provisional global and
    // settles the round (Eq. 1 over the surviving summaries).
    telemetry::Span root_span(telemetry::labels::root_pass());
    std::vector<fl::GradientUpdate> summaries(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        summaries[s].client = static_cast<fl::NodeId>(s);
        summaries[s].round = updates.empty() ? 0 : updates.front().round;
        summaries[s].weights = outcomes[s].summary;
        summaries[s].num_samples = plan[s].size();
    }
    ContributionConfig root_config = config;
    root_config.index_slot = 1;
    ContributionReport root = identify_contributions(
        summaries, provisional_global, root_config, reference);
    std::vector<float> settled =
        apply_strategy(summaries, root, config.strategy);
    const double root_seconds = root_span.close();

    // --- Compose the flat-compatible round report.  Shares compose
    // multiplicatively: both levels' rewards sum to `base` (the flat pass
    // guarantees survivors whenever its input is non-empty), so dividing
    // each level by base and multiplying back conserves the budget
    // exactly.
    const double base = config.reward_base;
    const double inv_base = base != 0.0 ? 1.0 / base : 0.0;
    ContributionReport& report = result.report;
    report.entries.reserve(updates.size());
    for (std::size_t s = 0; s < shards; ++s) {
        const ContributionReport& shard = outcomes[s].report;
        const bool shard_high = root.entries[s].high;
        const double root_share = root.entries[s].reward * inv_base;
        for (std::size_t i = 0; i < shard.entries.size(); ++i) {
            ClientContribution entry = shard.entries[i];
            entry.high = entry.high && shard_high;
            entry.reward = shard.entries[i].reward * inv_base *
                           root_share * base;
            const std::size_t global_index = plan[s].begin + i;
            if (entry.high) {
                report.high_indices.push_back(global_index);
            } else {
                report.low_indices.push_back(global_index);
            }
            report.entries.push_back(std::move(entry));
        }
        report.index_build_seconds += shard.index_build_seconds;
        report.index_peak_bytes =
            std::max(report.index_peak_bytes, shard.index_peak_bytes);
        report.shard_seconds += outcomes[s].stats.seconds;
    }
    // The round-level clustering view is the root's: S summaries + the
    // global, the decision that actually settled the round.
    report.clustering = root.clustering;
    report.global_cluster = root.global_cluster;
    report.index_backend = root.index_backend;
    report.index_build_seconds += root.index_build_seconds;
    report.index_peak_bytes =
        std::max(report.index_peak_bytes, root.index_peak_bytes);
    report.shard_count = shards;
    report.root_seconds = root_seconds;
    report.settled_weights = std::move(settled);

    result.root_pass = stats_of(shards, root, root_seconds);
    result.shard_passes.reserve(shards);
    for (auto& outcome : outcomes)
        result.shard_passes.push_back(std::move(outcome.stats));
    return result;
}

}  // namespace fairbfl::incentive
