#include "incentive/reward.hpp"

#include <algorithm>

namespace fairbfl::incentive {

void RewardLedger::record(std::uint64_t round,
                          const ContributionReport& report) {
    for (const auto& entry : report.entries) {
        if (entry.reward <= 0.0) continue;
        record_entry(RewardEntry{round, entry.client, entry.reward});
    }
    rounds_seen_[round] = true;
}

void RewardLedger::record_entry(RewardEntry entry) {
    totals_[entry.client] += entry.amount;
    rounds_seen_[entry.round] = true;
    history_.push_back(entry);
}

std::size_t RewardLedger::amend_round(std::uint64_t round,
                                      const ContributionReport& report) {
    std::size_t removed = 0;
    auto keep = history_.begin();
    for (auto& entry : history_) {
        if (entry.round == round) {
            totals_[entry.client] -= entry.amount;
            ++removed;
            continue;
        }
        *keep++ = std::move(entry);
    }
    history_.erase(keep, history_.end());
    rounds_seen_.erase(round);
    record(round, report);
    return removed;
}

double RewardLedger::total_for(fl::NodeId client) const {
    const auto it = totals_.find(client);
    return it == totals_.end() ? 0.0 : it->second;
}

double RewardLedger::grand_total() const {
    double total = 0.0;
    for (const auto& [client, amount] : totals_) {
        (void)client;
        total += amount;
    }
    return total;
}

std::vector<std::pair<fl::NodeId, double>> RewardLedger::leaderboard() const {
    std::vector<std::pair<fl::NodeId, double>> board(totals_.begin(),
                                                     totals_.end());
    std::sort(board.begin(), board.end(), [](const auto& a, const auto& b) {
        return a.second != b.second ? a.second > b.second
                                    : a.first < b.first;
    });
    return board;
}

}  // namespace fairbfl::incentive
