#pragma once
// Hierarchical Algorithm 2: the shard-tree contribution pass.
//
// A flat round clusters all n updates plus the provisional global in one
// pass, so one process must hold every gradient and one GradientIndex must
// span all n points -- the wall between this reproduction and a
// million-client round.  The shard tree runs Algorithm 2 twice:
//
//   1. *Shard level* -- fl::ShardTree partitions the canonical update
//      order into S contiguous shards; each shard runs the full flat pass
//      (own GradientIndex via the configured IndexRegistry key, own
//      DBSCAN/k-means scan, exact theta scores against the round's
//      provisional global) independently on the work-stealing ThreadPool.
//      A shard forwards upward only its *survivor summary*: the Eq. 1
//      combine of its surviving updates.
//
//   2. *Root level* -- the S summaries are treated as pseudo-updates and
//      the same flat pass clusters them against the provisional global,
//      yielding per-shard high/low labels, root theta scores, and the
//      settled global update (Eq. 1 over the surviving summaries).
//
// Per-client outcomes compose multiplicatively, so theta-driven
// incentives stay end-to-end:
//
//   reward_i = (shard-local share of i) x (root share of i's shard) x base
//   high_i   = shard-locally high  AND  shard root-level high
//
// Both levels inherit the flat pass's guarantees (a non-empty round
// always has survivors; degenerate theta splits evenly), so per-shard
// local shares sum to 1 and root shares sum to 1 -- rewards conserve the
// round budget exactly, shards or no shards.
//
// Peak per-pass index memory drops from the flat bound at n points to the
// same bound at n/S (exact: O((n/S)^2) instead of O(n^2); sampled:
// O((n/S) m)), reported as ContributionReport::index_peak_bytes.  Results
// are deterministic at any thread count: shard assignment is a pure
// function of (n, S) and every pass draws no randomness outside its own
// seeded index internals.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "incentive/contribution.hpp"
#include "support/parallel.hpp"

namespace fairbfl::incentive {

/// Diagnostics of one tree pass (a shard, or the root).
struct ShardPassStats {
    /// Shard ordinal, or fl::ShardTree's S for the root pass.
    std::size_t shard = 0;
    /// Points clustered by the pass (clients or summaries, + the global).
    std::size_t points = 0;
    /// Updates the pass labelled high contribution.
    std::size_t high = 0;
    /// Index backend that served the pass (registry key).
    std::string index_backend;
    /// Wall seconds of the whole pass / of its index build.
    double seconds = 0.0;
    double index_build_seconds = 0.0;
    /// GradientIndex::storage_bytes() of the pass's index.
    std::size_t index_bytes = 0;
};

/// Everything the shard tree produced in one round.
struct HierarchicalReport {
    /// Flat-compatible round outcome: entries in canonical update order
    /// with hierarchical high flags and rewards, the *root* pass's
    /// clustering/global_cluster, per-level timings, and the settled
    /// global update in `settled_weights`.  Drop-in for every
    /// ContributionReport consumer (ledger, detection, apply_strategy).
    ContributionReport report;
    /// One entry per shard-level pass, in shard order.
    std::vector<ShardPassStats> shard_passes;
    /// The root pass over the shard summaries.
    ShardPassStats root_pass;
};

/// Runs the two-level shard-tree pass described above.
///
/// With `config.sharding.shards <= 1` (or a round too small to split --
/// see fl::ShardTree::shard_count) this is exactly the flat
/// identify_contributions call: same arithmetic, bit-for-bit.
///
/// \param updates            the round's gradient set, canonical order.
/// \param provisional_global the simple average of Algorithm 1 line 24.
/// \param config             Algorithm 2 configuration; `sharding` selects
///                           the fan-out, `strategy` governs which updates
///                           survive into each shard's summary.
/// \param reference          previous round's global weights (may be
///                           empty); both levels cluster effective
///                           gradients against it, like the flat pass.
/// \param pool               carries the shard fan-out; results are
///                           identical for any pool size.
[[nodiscard]] HierarchicalReport identify_contributions_hierarchical(
    std::span<const fl::GradientUpdate> updates,
    std::span<const float> provisional_global,
    const ContributionConfig& config, std::span<const float> reference = {},
    support::ThreadPool& pool = support::ThreadPool::global());

}  // namespace fairbfl::incentive
