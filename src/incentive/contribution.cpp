#include "incentive/contribution.hpp"

#include <algorithm>
#include <chrono>

#include "support/vecmath.hpp"
#include "telemetry/telemetry.hpp"

namespace fairbfl::incentive {

std::vector<fl::NodeId> ContributionReport::low_clients() const {
    std::vector<fl::NodeId> clients;
    clients.reserve(low_indices.size());
    for (const std::size_t i : low_indices) clients.push_back(entries[i].client);
    std::sort(clients.begin(), clients.end());
    return clients;
}

double ContributionReport::total_reward() const {
    double total = 0.0;
    for (const auto& entry : entries) total += entry.reward;
    return total;
}

ContributionReport identify_contributions(
    std::span<const fl::GradientUpdate> updates,
    std::span<const float> provisional_global,
    const ContributionConfig& config,
    std::span<const float> reference) {
    ContributionReport report;
    if (updates.empty()) return report;
    // One span per Algorithm-2 pass: the flat round's single pass, or --
    // under the shard tree -- each shard pass and the root pass (their
    // item ordinal distinguishes them in the decoded log).  The index
    // build inside emits its own "cluster.index_build" sub-span.
    const telemetry::Span span(telemetry::labels::identify());

    // Points = all updates followed by the provisional global update, so a
    // single clustering call implements "w_{r+1} in l_i" membership tests.
    // With a reference (previous global) the points are the round's
    // effective gradients w - w_r.
    const auto to_point = [&](std::span<const float> w) {
        std::vector<float> point(w.begin(), w.end());
        if (!reference.empty()) {
            for (std::size_t d = 0; d < point.size(); ++d)
                point[d] -= reference[d];
        }
        return point;
    };
    std::vector<std::vector<float>> points;
    points.reserve(updates.size() + 1);
    for (const auto& update : updates) points.push_back(to_point(update.weights));
    points.push_back(to_point(provisional_global));
    const std::size_t global_index = points.size() - 1;

    // Resolve the clustering algorithm by registry key; its configuration
    // decides the geometry the shared index is built in and -- under the
    // "auto" selection -- which backend fits its access pattern (dense
    // scans precompute, seed-only algorithms go lazy).
    const cluster::ClusteringConfig cluster_config{.dbscan = config.dbscan,
                                                   .kmeans = config.kmeans};
    const std::unique_ptr<cluster::ClusteringAlgorithm> algorithm =
        cluster::ClusteringRegistry::global().make(config.clustering,
                                                   cluster_config);

    // The round's one and only neighborhood-structure job: build the
    // selected GradientIndex backend over all updates plus the provisional
    // global -- O(n^2 d) for "exact", O(n d k) for the approximate
    // backends, nothing at all for "lazy".  Eps suggestion, the clustering
    // scan, and the nearest-cluster fallback all query it; nothing
    // downstream touches a dense matrix directly.
    cluster::IndexParams index_params = config.index_params;
    index_params.metric = algorithm->preferred_metric();
    const std::string_view index_key = config.index == "auto"
                                           ? algorithm->preferred_index()
                                           : std::string_view(config.index);
    const auto build_start = std::chrono::steady_clock::now();
    // With a cache installed the previous round's index is update()d in
    // place when only some points drifted (exact/lazy backends never
    // cache, so they rebuild exactly as before); without one this is a
    // plain registry build.
    std::unique_ptr<cluster::GradientIndex> index =
        config.index_cache != nullptr
            ? config.index_cache->acquire(config.index_slot, index_key,
                                          points, index_params)
            : cluster::IndexRegistry::global().build(index_key, points,
                                                     index_params);
    report.index_build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      build_start)
            .count();
    report.index_backend = index->name();
    report.index_peak_bytes = index->storage_bytes();

    report.clustering = algorithm->cluster_with(*index, points);
    report.global_cluster = report.clustering.labels[global_index];

    // Attackers can drag the provisional average off the honest cluster,
    // leaving the global update in DBSCAN noise.  Membership in "the
    // global's cluster" is then undefined; the robust reading of
    // Algorithm 2 assigns the global to its *nearest* cluster (minimum
    // index distance to any member), which is the honest one whenever an
    // honest majority exists.  Candidates ascend, and nearest_of breaks
    // ties on the first minimum, reproducing the old argmin scan exactly.
    if (report.global_cluster == cluster::ClusterResult::kNoise &&
        report.clustering.num_clusters > 0) {
        std::vector<std::size_t> clustered;
        clustered.reserve(global_index);
        for (std::size_t i = 0; i < global_index; ++i) {
            if (report.clustering.labels[i] != cluster::ClusterResult::kNoise)
                clustered.push_back(i);
        }
        if (!clustered.empty()) {
            const std::size_t nearest =
                index->nearest_of(global_index, clustered);
            report.global_cluster = report.clustering.labels[nearest];
        }
    }

    // Honest-majority guard.  Attackers who amplify their forged gradients
    // can flip the *direction* of the simple average, parking the global
    // update inside (or nearest to) the attacker cluster -- the defense
    // would then discard the honest majority.  The paper's own security
    // argument presumes "the vast majority of nodes remaining honest", so
    // when a strict majority cluster exists and it is not the global's,
    // side with the majority.
    if (report.clustering.num_clusters > 0) {
        std::vector<std::size_t> sizes(
            static_cast<std::size_t>(report.clustering.num_clusters), 0);
        for (std::size_t i = 0; i < global_index; ++i) {
            const int label = report.clustering.labels[i];
            if (label >= 0) ++sizes[static_cast<std::size_t>(label)];
        }
        const std::size_t biggest = static_cast<std::size_t>(
            std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
        if (sizes[biggest] * 2 > updates.size() &&
            static_cast<int>(biggest) != report.global_cluster) {
            report.global_cluster = static_cast<int>(biggest);
        }
    }

    // theta_i: cosine distance of each update to the provisional global.
    // Theta feeds reward and aggregation arithmetic, so it must stay exact
    // under every backend: an exact cosine index with precomputed rows
    // already holds the values in the global's row (read them back); any
    // other backend -- Euclidean exact, lazy (recomputing the row would
    // cost more than the kernel), sketches, pivot profiles -- falls
    // through to the fused batch kernel (bit-identical to pairwise
    // cosine_distance).
    std::vector<double> theta(updates.size());
    if (index->exact() && index->precomputed_rows() &&
        index->metric() == cluster::Metric::kCosine) {
        std::vector<double> global_row(points.size());
        index->distances_from(global_index, global_row);
        std::copy(global_row.begin(), global_row.begin() + updates.size(),
                  theta.begin());
    } else {
        support::cosine_distances_to(
            std::span<const std::vector<float>>(points).first(updates.size()),
            points[global_index], theta);
    }

    report.entries.resize(updates.size());
    double high_theta_sum = 0.0;
    for (std::size_t i = 0; i < updates.size(); ++i) {
        ClientContribution& entry = report.entries[i];
        entry.client = updates[i].client;
        entry.theta = theta[i];
        // High contribution: same (non-noise) cluster as the global update.
        // When the global lands in noise (tiny rounds / degenerate eps),
        // nobody is "in its cluster"; treat everyone as high so the round
        // degrades to plain fair aggregation instead of dropping everyone.
        entry.high = report.global_cluster == cluster::ClusterResult::kNoise
                         ? true
                         : report.clustering.labels[i] == report.global_cluster;
        if (entry.high) {
            high_theta_sum += entry.theta;
            report.high_indices.push_back(i);
        } else {
            report.low_indices.push_back(i);
        }
    }

    // Rewards: <C_i, theta_i / sum theta_k * base> for high contributors.
    if (high_theta_sum > 0.0) {
        for (const std::size_t i : report.high_indices) {
            report.entries[i].reward = report.entries[i].theta /
                                       high_theta_sum * config.reward_base;
        }
    } else if (!report.high_indices.empty()) {
        // All thetas ~0 (identical gradients): split the base evenly.
        const double share =
            config.reward_base /
            static_cast<double>(report.high_indices.size());
        for (const std::size_t i : report.high_indices)
            report.entries[i].reward = share;
    }

    // Hand the index (and the point set it reflects) back for next
    // round's incremental update.  Backends that cannot update are
    // dropped inside -- they rebuild next round exactly as before.
    if (config.index_cache != nullptr) {
        config.index_cache->release(config.index_slot, index_key,
                                    std::move(points), index_params,
                                    std::move(index));
    }
    return report;
}

std::vector<std::size_t> surviving_indices(std::size_t update_count,
                                           const ContributionReport& report,
                                           LowContributionStrategy strategy) {
    std::vector<std::size_t> survivors;
    if (strategy == LowContributionStrategy::kKeepAll ||
        report.high_indices.empty()) {
        survivors.resize(update_count);
        for (std::size_t i = 0; i < update_count; ++i) survivors[i] = i;
        return survivors;
    }
    return report.high_indices;
}

SurvivorSelection select_survivors(
    std::span<const fl::GradientUpdate> updates,
    const ContributionReport& report, LowContributionStrategy strategy) {
    const auto survivors =
        surviving_indices(updates.size(), report, strategy);
    SurvivorSelection selection;
    selection.updates.reserve(survivors.size());
    selection.theta.reserve(survivors.size());
    for (const std::size_t i : survivors) {
        selection.updates.push_back(updates[i]);
        selection.theta.push_back(report.entries[i].theta);
        selection.theta_sum += report.entries[i].theta;
    }
    return selection;
}

std::vector<float> apply_strategy(std::span<const fl::GradientUpdate> updates,
                                  const ContributionReport& report,
                                  LowContributionStrategy strategy) {
    // Hierarchical rounds arrive pre-settled: the shard tree already
    // applied the strategy per shard and combined per level (see
    // incentive/hierarchical.hpp); re-running flat Eq. 1 here would undo
    // the root-level weighting.
    if (!report.settled_weights.empty()) return report.settled_weights;
    const SurvivorSelection selection =
        select_survivors(updates, report, strategy);
    if (selection.degenerate()) {
        // Degenerate geometry: every surviving update coincides with the
        // global; Eq. 1 is undefined, use the simple average.
        return fl::simple_average(selection.updates);
    }
    return fl::fair_aggregate(selection.updates, selection.theta);
}

}  // namespace fairbfl::incentive
