#include "incentive/contribution.hpp"

#include <algorithm>
#include <limits>

#include "support/vecmath.hpp"

namespace fairbfl::incentive {

std::vector<fl::NodeId> ContributionReport::low_clients() const {
    std::vector<fl::NodeId> clients;
    clients.reserve(low_indices.size());
    for (const std::size_t i : low_indices) clients.push_back(entries[i].client);
    std::sort(clients.begin(), clients.end());
    return clients;
}

double ContributionReport::total_reward() const {
    double total = 0.0;
    for (const auto& entry : entries) total += entry.reward;
    return total;
}

ContributionReport identify_contributions(
    std::span<const fl::GradientUpdate> updates,
    std::span<const float> provisional_global,
    const ContributionConfig& config,
    std::span<const float> reference) {
    ContributionReport report;
    if (updates.empty()) return report;

    // Points = all updates followed by the provisional global update, so a
    // single clustering call implements "w_{r+1} in l_i" membership tests.
    // With a reference (previous global) the points are the round's
    // effective gradients w - w_r.
    const auto to_point = [&](std::span<const float> w) {
        std::vector<float> point(w.begin(), w.end());
        if (!reference.empty()) {
            for (std::size_t d = 0; d < point.size(); ++d)
                point[d] -= reference[d];
        }
        return point;
    };
    std::vector<std::vector<float>> points;
    points.reserve(updates.size() + 1);
    for (const auto& update : updates) points.push_back(to_point(update.weights));
    points.push_back(to_point(provisional_global));
    const std::size_t global_index = points.size() - 1;

    // The round's one and only O(n^2 d) job: the pairwise matrix over all
    // updates plus the provisional global, under the clustering metric.
    // Built for the DBSCAN branch only, where eps suggestion, the
    // neighbourhood scan, the nearest-cluster fallback, and (under the
    // cosine metric) the theta scores all read from it.  k-means touches
    // just O(k) seed distances, so the full build would cost more than it
    // saves -- that branch computes the few distances it needs directly.
    const cluster::Metric cluster_metric =
        config.clustering == ClusteringChoice::kDbscan
            ? config.dbscan.metric
            : config.kmeans.metric;
    cluster::DistanceMatrix dist;

    std::unique_ptr<cluster::ClusteringAlgorithm> algorithm;
    switch (config.clustering) {
        case ClusteringChoice::kDbscan: {
            dist = cluster::DistanceMatrix(cluster_metric, points);
            cluster::DbscanParams params = config.dbscan;
            if (config.adaptive_eps) {
                params.eps = config.adaptive_eps_scale *
                             cluster::suggest_eps(dist, params.min_pts);
            }
            algorithm = std::make_unique<cluster::Dbscan>(params);
            break;
        }
        case ClusteringChoice::kKMeans:
            algorithm = std::make_unique<cluster::KMeans>(config.kmeans);
            break;
    }
    const bool have_matrix = dist.size() == points.size();
    report.clustering = have_matrix ? algorithm->cluster_with(dist, points)
                                    : algorithm->cluster(points);
    report.global_cluster = report.clustering.labels[global_index];

    // Attackers can drag the provisional average off the honest cluster,
    // leaving the global update in DBSCAN noise.  Membership in "the
    // global's cluster" is then undefined; the robust reading of
    // Algorithm 2 assigns the global to its *nearest* cluster (minimum
    // distance under the clustering metric to any member), which is the
    // honest one whenever an honest majority exists.
    if (report.global_cluster == cluster::ClusterResult::kNoise &&
        report.clustering.num_clusters > 0) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < global_index; ++i) {
            const int label = report.clustering.labels[i];
            if (label == cluster::ClusterResult::kNoise) continue;
            const double d =
                have_matrix ? dist.at(global_index, i)
                            : cluster::distance(cluster_metric, points[i],
                                                points[global_index]);
            if (d < best) {
                best = d;
                report.global_cluster = label;
            }
        }
    }

    // Honest-majority guard.  Attackers who amplify their forged gradients
    // can flip the *direction* of the simple average, parking the global
    // update inside (or nearest to) the attacker cluster -- the defense
    // would then discard the honest majority.  The paper's own security
    // argument presumes "the vast majority of nodes remaining honest", so
    // when a strict majority cluster exists and it is not the global's,
    // side with the majority.
    if (report.clustering.num_clusters > 0) {
        std::vector<std::size_t> sizes(
            static_cast<std::size_t>(report.clustering.num_clusters), 0);
        for (std::size_t i = 0; i < global_index; ++i) {
            const int label = report.clustering.labels[i];
            if (label >= 0) ++sizes[static_cast<std::size_t>(label)];
        }
        const std::size_t biggest = static_cast<std::size_t>(
            std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
        if (sizes[biggest] * 2 > updates.size() &&
            static_cast<int>(biggest) != report.global_cluster) {
            report.global_cluster = static_cast<int>(biggest);
        }
    }

    // theta_i: cosine distance of each update to the provisional global.
    // The cosine matrix already holds these in the global's row; otherwise
    // the fused batch kernel computes them with the global's norm cached
    // (bit-identical to pairwise cosine_distance).
    std::vector<double> theta(updates.size());
    if (have_matrix && cluster_metric == cluster::Metric::kCosine) {
        const auto global_row = dist.row(global_index);
        std::copy(global_row.begin(), global_row.begin() + updates.size(),
                  theta.begin());
    } else {
        support::cosine_distances_to(
            std::span<const std::vector<float>>(points).first(updates.size()),
            points[global_index], theta);
    }

    report.entries.resize(updates.size());
    double high_theta_sum = 0.0;
    for (std::size_t i = 0; i < updates.size(); ++i) {
        ClientContribution& entry = report.entries[i];
        entry.client = updates[i].client;
        entry.theta = theta[i];
        // High contribution: same (non-noise) cluster as the global update.
        // When the global lands in noise (tiny rounds / degenerate eps),
        // nobody is "in its cluster"; treat everyone as high so the round
        // degrades to plain fair aggregation instead of dropping everyone.
        entry.high = report.global_cluster == cluster::ClusterResult::kNoise
                         ? true
                         : report.clustering.labels[i] == report.global_cluster;
        if (entry.high) {
            high_theta_sum += entry.theta;
            report.high_indices.push_back(i);
        } else {
            report.low_indices.push_back(i);
        }
    }

    // Rewards: <C_i, theta_i / sum theta_k * base> for high contributors.
    if (high_theta_sum > 0.0) {
        for (const std::size_t i : report.high_indices) {
            report.entries[i].reward = report.entries[i].theta /
                                       high_theta_sum * config.reward_base;
        }
    } else if (!report.high_indices.empty()) {
        // All thetas ~0 (identical gradients): split the base evenly.
        const double share =
            config.reward_base /
            static_cast<double>(report.high_indices.size());
        for (const std::size_t i : report.high_indices)
            report.entries[i].reward = share;
    }
    return report;
}

std::vector<std::size_t> surviving_indices(std::size_t update_count,
                                           const ContributionReport& report,
                                           LowContributionStrategy strategy) {
    std::vector<std::size_t> survivors;
    if (strategy == LowContributionStrategy::kKeepAll ||
        report.high_indices.empty()) {
        survivors.resize(update_count);
        for (std::size_t i = 0; i < update_count; ++i) survivors[i] = i;
        return survivors;
    }
    return report.high_indices;
}

SurvivorSelection select_survivors(
    std::span<const fl::GradientUpdate> updates,
    const ContributionReport& report, LowContributionStrategy strategy) {
    const auto survivors =
        surviving_indices(updates.size(), report, strategy);
    SurvivorSelection selection;
    selection.updates.reserve(survivors.size());
    selection.theta.reserve(survivors.size());
    for (const std::size_t i : survivors) {
        selection.updates.push_back(updates[i]);
        selection.theta.push_back(report.entries[i].theta);
        selection.theta_sum += report.entries[i].theta;
    }
    return selection;
}

std::vector<float> apply_strategy(std::span<const fl::GradientUpdate> updates,
                                  const ContributionReport& report,
                                  LowContributionStrategy strategy) {
    const SurvivorSelection selection =
        select_survivors(updates, report, strategy);
    if (selection.degenerate()) {
        // Degenerate geometry: every surviving update coincides with the
        // global; Eq. 1 is undefined, use the simple average.
        return fl::simple_average(selection.updates);
    }
    return fl::fair_aggregate(selection.updates, selection.theta);
}

}  // namespace fairbfl::incentive
