#pragma once
// FedProx (Li et al., MLSys'20): the state-of-the-art FL baseline of the
// paper's evaluation.
//
// Two FedProx mechanisms matter for the comparison:
//  * the proximal term mu/2 ||w - w_r||^2 in every local objective (an
//    "inexact solution to speed up convergence" -- the paper credits this
//    for FedProx's accuracy fluctuation after convergence);
//  * straggler handling via drop_percent.  Section 5.3 of the paper runs
//    "FedProx-Drop(0.02)": each selected client straggles with probability
//    drop_percent and is *discarded* from aggregation.  The original
//    FedProx instead keeps stragglers' partial work; both behaviours are
//    implemented (set keep_partial_work).

#include "fl/fedavg.hpp"

namespace fairbfl::fl {

struct FedProxConfig {
    FlConfig base;
    double prox_mu = 0.01;          ///< proximal coefficient
    double drop_percent = 0.0;      ///< straggler probability per client
    bool keep_partial_work = false; ///< true = original FedProx behaviour
    /// Stragglers that are kept run this fraction of the local epochs.
    double straggler_epoch_fraction = 0.2;
};

class FedProx {
public:
    FedProx(const ml::Model& model, std::vector<Client> clients,
            ml::DatasetView test_set, FedProxConfig config);

    RoundRecord run_round();
    std::vector<RoundRecord> run(std::size_t rounds = 0);

    [[nodiscard]] std::span<const float> weights() const noexcept {
        return weights_;
    }
    [[nodiscard]] const FedProxConfig& config() const noexcept {
        return config_;
    }
    /// Clients dropped as stragglers so far.
    [[nodiscard]] std::size_t total_dropped() const noexcept {
        return total_dropped_;
    }

private:
    const ml::Model* model_;
    std::vector<Client> clients_;
    ml::DatasetView test_set_;
    FedProxConfig config_;
    LocalTrainer trainer_;
    std::vector<float> weights_;
    std::uint64_t round_ = 0;
    std::size_t total_dropped_ = 0;
};

}  // namespace fairbfl::fl
