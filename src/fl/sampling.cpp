#include "fl/sampling.hpp"

#include <algorithm>
#include <cmath>

namespace fairbfl::fl {

std::vector<std::size_t> sample_clients(std::size_t n, double ratio,
                                        std::uint64_t round,
                                        std::uint64_t root_seed) {
    ratio = std::clamp(ratio, 0.0, 1.0);
    auto k = static_cast<std::size_t>(
        std::ceil(ratio * static_cast<double>(n)));
    if (k == 0) k = 1;
    k = std::min(k, n);
    // Stream 0x5E1 namespaces selection randomness.
    auto rng = support::Rng::fork(root_seed, /*stream=*/0x5E1, round);
    auto sample = rng.sample_indices(n, k);
    std::sort(sample.begin(), sample.end());
    return sample;
}

std::vector<std::size_t> exclude_clients(
    std::vector<std::size_t> selected,
    const std::vector<std::size_t>& excluded) {
    std::erase_if(selected, [&](std::size_t id) {
        return std::find(excluded.begin(), excluded.end(), id) !=
               excluded.end();
    });
    return selected;
}

}  // namespace fairbfl::fl
