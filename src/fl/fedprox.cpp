#include "fl/fedprox.hpp"

#include <algorithm>
#include <cmath>

#include "fl/aggregation.hpp"

namespace fairbfl::fl {

FedProx::FedProx(const ml::Model& model, std::vector<Client> clients,
                 ml::DatasetView test_set, FedProxConfig config)
    : model_(&model),
      clients_(std::move(clients)),
      test_set_(std::move(test_set)),
      config_(config),
      trainer_(LocalTrainer::Options{.batched = config.base.batched_training}),
      weights_(model.param_count(), 0.0F) {
    config_.base.sgd.prox_mu = config_.prox_mu;
    auto rng = support::Rng::fork(config_.base.seed, /*stream=*/0x1417);
    model_->init_params(weights_, rng);
}

RoundRecord FedProx::run_round() {
    const std::uint64_t round = round_++;
    const FlConfig& base = config_.base;
    auto selected = sample_clients(clients_.size(), base.client_ratio, round,
                                   base.seed);
    const std::size_t selected_count = selected.size();

    // Straggler designation (stream 0xD07 keeps it independent of client
    // sampling and training noise).
    auto straggle_rng = support::Rng::fork(base.seed, /*stream=*/0xD07, round);
    std::vector<std::size_t> full_work;
    std::vector<std::size_t> stragglers;
    for (const std::size_t id : selected) {
        if (straggle_rng.bernoulli(config_.drop_percent))
            stragglers.push_back(id);
        else
            full_work.push_back(id);
    }
    if (full_work.empty() && !stragglers.empty()) {
        // Never lose the whole round: the least unlucky straggler works.
        full_work.push_back(stragglers.back());
        stragglers.pop_back();
    }

    auto updates = trainer_.run(clients_, full_work, weights_, base.sgd,
                                round, base.seed);
    if (config_.keep_partial_work && !stragglers.empty()) {
        ml::SgdParams partial = base.sgd;
        partial.epochs = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::floor(config_.straggler_epoch_fraction *
                              static_cast<double>(base.sgd.epochs))));
        auto partial_updates = trainer_.run(clients_, stragglers, weights_,
                                            partial, round, base.seed);
        updates.insert(updates.end(),
                       std::make_move_iterator(partial_updates.begin()),
                       std::make_move_iterator(partial_updates.end()));
    } else {
        total_dropped_ += stragglers.size();
    }

    weights_ = simple_average(updates);

    RoundRecord record;
    record.round = round;
    record.selected = selected_count;
    record.participants = updates.size();
    for (const auto& u : updates)
        record.participant_ids.push_back(u.client);
    record.test_accuracy = model_->accuracy(weights_, test_set_);
    double loss_sum = 0.0;
    for (const auto& u : updates) loss_sum += u.local_loss;
    record.mean_local_loss =
        updates.empty() ? 0.0
                        : loss_sum / static_cast<double>(updates.size());
    return record;
}

std::vector<RoundRecord> FedProx::run(std::size_t rounds) {
    if (rounds == 0) rounds = config_.base.rounds;
    std::vector<RoundRecord> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r) history.push_back(run_round());
    return history;
}

}  // namespace fairbfl::fl
