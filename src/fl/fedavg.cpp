#include "fl/fedavg.hpp"

#include "fl/aggregation.hpp"

namespace fairbfl::fl {

std::vector<GradientUpdate> run_local_updates(
    const std::vector<Client>& clients,
    const std::vector<std::size_t>& selected,
    std::span<const float> global_weights, const ml::SgdParams& sgd,
    std::uint64_t round, std::uint64_t seed) {
    LocalTrainer trainer;
    return trainer.run(clients, selected, global_weights, sgd, round, seed);
}

FedAvg::FedAvg(const ml::Model& model, std::vector<Client> clients,
               ml::DatasetView test_set, FlConfig config)
    : model_(&model),
      clients_(std::move(clients)),
      test_set_(std::move(test_set)),
      config_(config),
      trainer_(LocalTrainer::Options{.batched = config.batched_training}),
      weights_(model.param_count(), 0.0F) {
    auto rng = support::Rng::fork(config_.seed, /*stream=*/0x1417);
    model_->init_params(weights_, rng);
}

RoundRecord FedAvg::run_round() {
    const std::uint64_t round = round_++;
    const auto selected = sample_clients(clients_.size(),
                                         config_.client_ratio, round,
                                         config_.seed);
    const auto updates = trainer_.run(clients_, selected, weights_,
                                      config_.sgd, round, config_.seed);
    weights_ = simple_average(updates);

    RoundRecord record;
    record.round = round;
    record.selected = selected.size();
    record.participants = updates.size();
    record.participant_ids = selected;
    record.test_accuracy = model_->accuracy(weights_, test_set_);
    double loss_sum = 0.0;
    for (const auto& u : updates) loss_sum += u.local_loss;
    record.mean_local_loss =
        updates.empty() ? 0.0
                        : loss_sum / static_cast<double>(updates.size());
    return record;
}

std::vector<RoundRecord> FedAvg::run(std::size_t rounds) {
    if (rounds == 0) rounds = config_.rounds;
    std::vector<RoundRecord> history;
    history.reserve(rounds);
    for (std::size_t r = 0; r < rounds; ++r) history.push_back(run_round());
    return history;
}

}  // namespace fairbfl::fl
