#include "fl/aggregation.hpp"

#include <stdexcept>

#include "support/vecmath.hpp"

namespace fairbfl::fl {

namespace {

void check_updates(std::span<const GradientUpdate> updates) {
    if (updates.empty())
        throw std::invalid_argument("aggregate: empty update set");
    const std::size_t width = updates[0].weights.size();
    for (const auto& u : updates) {
        if (u.weights.size() != width)
            throw std::invalid_argument("aggregate: ragged update widths");
    }
}

}  // namespace

namespace {

/// The update set as a borrowed row view for the vecmath combine kernels,
/// which split the dimension range across the thread pool for large
/// models while accumulating bit-identically to the serial axpy loop.
std::vector<support::RowView> rows_of(
    std::span<const GradientUpdate> updates) {
    std::vector<support::RowView> rows;
    rows.reserve(updates.size());
    for (const auto& u : updates) rows.emplace_back(u.weights);
    return rows;
}

}  // namespace

std::vector<float> simple_average(std::span<const GradientUpdate> updates) {
    check_updates(updates);
    std::vector<float> out(updates[0].weights.size(), 0.0F);
    support::mean_of(rows_of(updates), out);
    return out;
}

std::vector<float> weighted_aggregate(std::span<const GradientUpdate> updates,
                                      std::span<const double> weights) {
    check_updates(updates);
    if (weights.size() != updates.size())
        throw std::invalid_argument("aggregate: weight count mismatch");
    double sum = 0.0;
    for (const double w : weights) {
        if (w < 0.0)
            throw std::invalid_argument("aggregate: negative weight");
        sum += w;
    }
    if (sum <= 0.0)
        throw std::invalid_argument("aggregate: zero weight sum");

    std::vector<double> normalized(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        normalized[i] = weights[i] / sum;
    std::vector<float> out(updates[0].weights.size(), 0.0F);
    support::weighted_sum(rows_of(updates), normalized, out);
    return out;
}

std::vector<float> sample_weighted_average(
    std::span<const GradientUpdate> updates) {
    check_updates(updates);
    std::vector<double> weights;
    weights.reserve(updates.size());
    for (const auto& u : updates)
        weights.push_back(static_cast<double>(u.num_samples));
    return weighted_aggregate(updates, weights);
}

std::vector<float> fair_aggregate(std::span<const GradientUpdate> updates,
                                  std::span<const double> theta) {
    return weighted_aggregate(updates, theta);
}

}  // namespace fairbfl::fl
