#pragma once
// A federated client C_i: owns a data shard and produces local updates
// (Procedure I, Algorithm 1 lines 6-11).
//
// Clients are value types holding only an id and a view into the shared
// dataset; the Model is shared immutably.  local_update() is pure given
// (global weights, round, seed), so the simulator can run all selected
// clients through a parallel_for with bit-reproducible results.

#include <span>

#include "fl/gradient.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"

namespace fairbfl::fl {

class Client {
public:
    Client(NodeId id, const ml::Model& model, ml::DatasetView shard) noexcept
        : id_(id), model_(&model), shard_(std::move(shard)) {}

    [[nodiscard]] NodeId id() const noexcept { return id_; }
    [[nodiscard]] std::size_t num_samples() const noexcept {
        return shard_.size();
    }
    [[nodiscard]] const ml::DatasetView& shard() const noexcept {
        return shard_;
    }

    /// Procedure I: start from the global weights, run E epochs of
    /// mini-batch SGD on the local shard, return the updated weights.
    /// `root_seed` + (id, round) select the client's private randomness.
    [[nodiscard]] GradientUpdate local_update(
        std::span<const float> global_weights, const ml::SgdParams& sgd,
        std::uint64_t round, std::uint64_t root_seed) const;

    /// Engine variant: same update bit-for-bit, but scratch comes from
    /// `ws` and, when `pack` is non-null (it must hold this client's
    /// shard), SGD runs on the batched kernels over the packed rows.
    /// fl::LocalTrainer owns the per-client ws/pack caches and calls this.
    [[nodiscard]] GradientUpdate local_update(
        std::span<const float> global_weights, const ml::SgdParams& sgd,
        std::uint64_t round, std::uint64_t root_seed, ml::TrainWorkspace& ws,
        const ml::PackedBatch* pack) const;

    /// Client-side validation accuracy of a weight vector on the local
    /// shard (the acc_i of the paper's "average accuracy" metric).
    [[nodiscard]] double local_accuracy(std::span<const float> weights) const {
        return model_->accuracy(weights, shard_);
    }

private:
    NodeId id_;
    const ml::Model* model_;
    ml::DatasetView shard_;
};

/// Builds one client per shard with ids 0..n-1.
[[nodiscard]] std::vector<Client> make_clients(
    const ml::Model& model, const std::vector<ml::DatasetView>& shards);

}  // namespace fairbfl::fl
