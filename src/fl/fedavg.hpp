#pragma once
// FedAvg (McMahan et al., AISTATS'17): the centralized-FL baseline of the
// paper's evaluation and the learning loop FAIR-BFL builds on.

#include <cstdint>
#include <vector>

#include "fl/client.hpp"
#include "fl/local_trainer.hpp"
#include "fl/sampling.hpp"
#include "ml/model.hpp"
#include "support/parallel.hpp"

namespace fairbfl::fl {

struct FlConfig {
    double client_ratio = 0.1;  ///< lambda: fraction of clients per round
    std::size_t rounds = 100;
    ml::SgdParams sgd;          ///< eta=0.01, E=5, B=10 paper defaults
    std::uint64_t seed = 42;
    /// Procedure-I engine selection (fl::LocalTrainer): batched kernels
    /// over packed shards, or the per-sample reference path.  Results are
    /// bit-identical either way; the switch exists for A/B benchmarking
    /// and as the equivalence oracle.
    bool batched_training = true;
};

/// One communication round's outcome.
struct RoundRecord {
    std::uint64_t round = 0;
    double test_accuracy = 0.0;
    double mean_local_loss = 0.0;
    std::size_t participants = 0;   ///< updates that reached aggregation
    std::size_t selected = 0;       ///< clients selected at line 3
    /// Ids of the clients whose updates reached aggregation (the delay
    /// model needs their shard sizes to price T_local).
    std::vector<std::size_t> participant_ids;
};

/// Runs the selected clients' local updates in parallel and returns their
/// gradient updates in selection order.  Convenience wrapper over a
/// transient fl::LocalTrainer; systems that run many rounds (FedAvg,
/// FedProx, the BFL cores) own a persistent trainer instead so the
/// per-client pack/workspace caches survive across rounds.
[[nodiscard]] std::vector<GradientUpdate> run_local_updates(
    const std::vector<Client>& clients,
    const std::vector<std::size_t>& selected,
    std::span<const float> global_weights, const ml::SgdParams& sgd,
    std::uint64_t round, std::uint64_t seed);

class FedAvg {
public:
    FedAvg(const ml::Model& model, std::vector<Client> clients,
           ml::DatasetView test_set, FlConfig config);

    /// Executes one communication round and returns its record.
    RoundRecord run_round();

    /// Executes `rounds` (config default when 0) and returns the history.
    std::vector<RoundRecord> run(std::size_t rounds = 0);

    [[nodiscard]] std::span<const float> weights() const noexcept {
        return weights_;
    }
    [[nodiscard]] std::uint64_t current_round() const noexcept {
        return round_;
    }
    [[nodiscard]] const FlConfig& config() const noexcept { return config_; }
    [[nodiscard]] const std::vector<Client>& clients() const noexcept {
        return clients_;
    }

private:
    const ml::Model* model_;
    std::vector<Client> clients_;
    ml::DatasetView test_set_;
    FlConfig config_;
    LocalTrainer trainer_;
    std::vector<float> weights_;
    std::uint64_t round_ = 0;
};

}  // namespace fairbfl::fl
