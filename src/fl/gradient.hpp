#pragma once
// The unit that travels from clients to the aggregator: one client's updated
// weight vector for a round.  The paper (like FedAvg) calls this "the
// gradient w^i_{r+1}"; we keep that vocabulary.

#include <cstdint>
#include <vector>

namespace fairbfl::fl {

using NodeId = std::uint32_t;

struct GradientUpdate {
    NodeId client = 0;
    std::uint64_t round = 0;
    std::vector<float> weights;     ///< w^i_{r+1}, full parameter vector
    std::size_t num_samples = 0;    ///< |D_i|; *self-reported* in vanilla BFL
    double local_loss = 0.0;        ///< final local training loss (diagnostic)

    [[nodiscard]] bool operator==(const GradientUpdate& rhs) const = default;

    /// Wire size of this update in bytes (weights dominate); drives the
    /// network-delay and block-size models.
    [[nodiscard]] std::size_t payload_bytes() const noexcept {
        return weights.size() * sizeof(float) + 24;
    }
};

/// The gradient set W^k_{r+1} a miner accumulates (Algorithm 1 lines 16-22).
/// Deduplicates by client id on merge, exactly like the paper's
/// "if w not in W then append" exchange step.
class GradientSet {
public:
    /// Returns false (and ignores the update) when this client is already
    /// represented.
    bool add(GradientUpdate update);

    /// Merges another miner's set; returns how many updates were new.
    std::size_t merge(const GradientSet& other);

    [[nodiscard]] bool contains(NodeId client) const noexcept;
    [[nodiscard]] std::size_t size() const noexcept { return updates_.size(); }
    [[nodiscard]] bool empty() const noexcept { return updates_.empty(); }
    [[nodiscard]] const std::vector<GradientUpdate>& updates() const noexcept {
        return updates_;
    }

    /// Sorts by client id so every miner's set has identical ordering before
    /// aggregation (determinism across the simulated network).
    void canonicalize();

    void clear() noexcept { updates_.clear(); }

private:
    std::vector<GradientUpdate> updates_;
};

}  // namespace fairbfl::fl
