#pragma once
// ShardTree: the partition topology of hierarchical Algorithm-2 rounds.
//
// One process cannot hold a million client gradients, whatever the index
// backend: the `sampled` backend caps a *pass* at O(n m) memory, but the
// pass still sees all n points.  The shard tree breaks the round into S
// independent shard-level passes of n/S clients each -- every pass builds
// its own cluster::GradientIndex, so peak per-pass memory drops from
// O(n^2) (exact) / O(n m) (sampled) to the same bound at n/S -- and a
// root-level pass over the S shard summaries restores the global
// decision.  incentive/hierarchical.hpp implements the two-level
// Algorithm-2 pass on top of this topology; this header owns only the
// deterministic client -> shard assignment.
//
// Shards are contiguous, balanced ranges over the canonical
// (client-id-sorted) update order: assignment depends on nothing but
// (n, shard count), so rounds are bit-reproducible at any thread count
// and shard membership is stable across rounds for a fixed population.

#include <cstddef>
#include <vector>

namespace fairbfl::fl {

/// Tuning of the shard tree.  The default (`shards == 1`) is the flat
/// single-pass pipeline, bit-for-bit.
struct ShardingConfig {
    /// Requested shard-level fan-out S.  1 disables the tree.
    std::size_t shards = 1;
    /// Lower bound on clients per shard.  A shard-level DBSCAN pass needs
    /// enough points for cluster structure to exist (min_pts core points
    /// plus room for outliers), so the effective shard count is clamped to
    /// keep every shard at least this large.  8 comfortably holds the
    /// default `min_pts = 3` geometry.
    std::size_t min_shard_clients = 8;
};

/// One shard's contiguous index range [begin, end) into the round's
/// canonical update order.
struct ShardRange {
    std::size_t begin = 0;
    std::size_t end = 0;

    /// Number of clients in the shard.
    [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

/// Deterministic shard planner: clamps the requested fan-out to the
/// round's population and hands out balanced contiguous ranges.
class ShardTree {
public:
    /// \param config requested fan-out and the per-shard size floor.
    explicit ShardTree(ShardingConfig config) noexcept : config_(config) {}

    /// The configuration the tree was built with.
    [[nodiscard]] const ShardingConfig& config() const noexcept {
        return config_;
    }

    /// Effective shard count for an n-client round: the requested
    /// `config().shards`, clamped so every shard keeps at least
    /// `min_shard_clients` members (and to at least 1).
    /// \param n number of client updates in the round.
    [[nodiscard]] std::size_t shard_count(std::size_t n) const noexcept;

    /// Balanced contiguous partition of [0, n) into shard_count(n) ranges:
    /// the first n % S shards take one extra client.  Ranges cover [0, n)
    /// exactly, in ascending order.
    /// \param n number of client updates in the round.
    [[nodiscard]] std::vector<ShardRange> plan(std::size_t n) const;

private:
    ShardingConfig config_;
};

}  // namespace fairbfl::fl
