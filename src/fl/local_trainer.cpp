#include "fl/local_trainer.hpp"

namespace fairbfl::fl {

std::vector<GradientUpdate> LocalTrainer::run(
    const std::vector<Client>& clients,
    const std::vector<std::size_t>& selected,
    std::span<const float> global_weights, const ml::SgdParams& sgd,
    std::uint64_t round, std::uint64_t root_seed) {
    if (cache_.size() < clients.size()) cache_.resize(clients.size());

    std::vector<GradientUpdate> updates(selected.size());
    support::ThreadPool& pool =
        options_.pool != nullptr ? *options_.pool
                                 : support::ThreadPool::global();
    support::parallel_for(
        0, selected.size(),
        [&](std::size_t slot) {
            const std::size_t id = selected[slot];
            const Client& client = clients[id];
            ClientCache& cache = cache_[id];
            const ml::PackedBatch* pack = nullptr;
            if (options_.batched && !client.shard().empty()) {
                // Pack once; shards are stable across rounds, so this is
                // a first-round cost only.
                if (!cache.pack.packed_from(client.shard()))
                    cache.pack.pack(client.shard());
                pack = &cache.pack;
            }
            updates[slot] = client.local_update(global_weights, sgd, round,
                                                root_seed, cache.ws, pack);
        },
        pool);
    return updates;
}

}  // namespace fairbfl::fl
