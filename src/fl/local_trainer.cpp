#include "fl/local_trainer.hpp"

#include "telemetry/telemetry.hpp"

namespace fairbfl::fl {

void LocalTrainer::ensure_capacity(std::size_t population) {
    if (cache_.size() < population) cache_.resize(population);
}

GradientUpdate LocalTrainer::train_one(const std::vector<Client>& clients,
                                       std::size_t client_id,
                                       std::span<const float> global_weights,
                                       const ml::SgdParams& sgd,
                                       std::uint64_t round,
                                       std::uint64_t root_seed) {
    const telemetry::Span span(telemetry::labels::local_client());
    const Client& client = clients[client_id];
    ClientCache& cache = cache_[client_id];
    const ml::PackedBatch* pack = nullptr;
    if (options_.batched && !client.shard().empty()) {
        // Pack once; shards are stable across rounds, so this is a
        // first-round cost only.
        if (!cache.pack.packed_from(client.shard()))
            cache.pack.pack(client.shard());
        pack = &cache.pack;
    }
    return client.local_update(global_weights, sgd, round, root_seed,
                               cache.ws, pack);
}

std::vector<GradientUpdate> LocalTrainer::run(
    const std::vector<Client>& clients,
    const std::vector<std::size_t>& selected,
    std::span<const float> global_weights, const ml::SgdParams& sgd,
    std::uint64_t round, std::uint64_t root_seed) {
    ensure_capacity(clients.size());

    std::vector<GradientUpdate> updates(selected.size());
    support::ThreadPool& pool =
        options_.pool != nullptr ? *options_.pool
                                 : support::ThreadPool::global();
    // Round context captured on the calling thread so the per-client spans
    // emitted from pool workers carry the round's session/round/parent.
    const telemetry::Context ctx = telemetry::current_context();
    support::parallel_for(
        0, selected.size(),
        [&](std::size_t slot) {
            const std::size_t id = selected[slot];
            const telemetry::ContextScope scope(
                ctx.with_item(static_cast<std::uint32_t>(id)));
            updates[slot] = train_one(clients, id, global_weights, sgd,
                                      round, root_seed);
        },
        pool);
    return updates;
}

}  // namespace fairbfl::fl
