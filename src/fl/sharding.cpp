#include "fl/sharding.hpp"

#include <algorithm>

namespace fairbfl::fl {

std::size_t ShardTree::shard_count(std::size_t n) const noexcept {
    if (n == 0) return 1;
    const std::size_t floor_size =
        std::max<std::size_t>(config_.min_shard_clients, 1);
    // Largest S with n / S >= floor_size, capped by the request.
    const std::size_t supportable = std::max<std::size_t>(n / floor_size, 1);
    return std::clamp<std::size_t>(config_.shards, 1, supportable);
}

std::vector<ShardRange> ShardTree::plan(std::size_t n) const {
    const std::size_t shards = shard_count(n);
    std::vector<ShardRange> ranges;
    ranges.reserve(shards);
    const std::size_t base = n / shards;
    const std::size_t extra = n % shards;  // first `extra` shards take +1
    std::size_t begin = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t size = base + (s < extra ? 1 : 0);
        ranges.push_back({begin, begin + size});
        begin += size;
    }
    return ranges;
}

}  // namespace fairbfl::fl
