#include "fl/gradient.hpp"

#include <algorithm>

namespace fairbfl::fl {

bool GradientSet::add(GradientUpdate update) {
    if (contains(update.client)) return false;
    updates_.push_back(std::move(update));
    return true;
}

std::size_t GradientSet::merge(const GradientSet& other) {
    std::size_t added = 0;
    for (const auto& update : other.updates_) {
        if (add(update)) ++added;
    }
    return added;
}

bool GradientSet::contains(NodeId client) const noexcept {
    return std::any_of(updates_.begin(), updates_.end(),
                       [client](const GradientUpdate& u) {
                           return u.client == client;
                       });
}

void GradientSet::canonicalize() {
    std::sort(updates_.begin(), updates_.end(),
              [](const GradientUpdate& a, const GradientUpdate& b) {
                  return a.client < b.client;
              });
}

}  // namespace fairbfl::fl
