#pragma once
// The Procedure-I engine: one object per system that drives the selected
// clients' local SGD (Algorithm 1 lines 6-11) through the thread pool on
// the batched ml kernels.
//
// The trainer owns, per client, a PackedBatch (the shard gathered once
// into contiguous rows -- shards never change across rounds) and a
// TrainWorkspace (all SGD scratch), so the steady-state round performs
// zero heap allocation in the hot loop and streams cache-resident packed
// features instead of chasing shard indices through the full dataset.
//
// Determinism: every client draws only from Rng::fork(root_seed, id,
// round), and the batched kernels are bit-identical to the per-sample
// reference path (pinned in tests/test_train_engine.cpp), so parallel
// order -- and the engine choice itself -- never changes results.

#include <span>
#include <vector>

#include "fl/client.hpp"
#include "support/parallel.hpp"

namespace fairbfl::fl {

class LocalTrainer {
public:
    struct Options {
        /// Batched kernels over packed shards.  Off = the per-sample
        /// reference path (kept as the equivalence oracle); results are
        /// identical either way.
        bool batched = true;
        /// Pool for the client fan-out; null = ThreadPool::global().
        support::ThreadPool* pool = nullptr;
    };

    /// Engine with default options (batched kernels, global pool).
    LocalTrainer() noexcept : LocalTrainer(Options{}) {}
    /// Engine with explicit options.
    /// \param options engine selection and fan-out pool.
    explicit LocalTrainer(Options options) noexcept : options_(options) {}

    /// Runs the selected clients' local updates in parallel and returns
    /// them in selection order.  Bit-identical to fl::run_local_updates.
    /// \param clients        the full client population (stable ids).
    /// \param selected       ids of this round's participants.
    /// \param global_weights w_r, the weights every client starts from.
    /// \param sgd            local SGD hyperparameters (Algorithm 1).
    /// \param round          round ordinal, keys each client's Rng fork.
    /// \param root_seed      experiment seed, keys each client's Rng fork.
    [[nodiscard]] std::vector<GradientUpdate> run(
        const std::vector<Client>& clients,
        const std::vector<std::size_t>& selected,
        std::span<const float> global_weights, const ml::SgdParams& sgd,
        std::uint64_t round, std::uint64_t root_seed);

    /// Sizes the per-client cache for a population.  Must be called (once
    /// per population size) before train_one() runs from pool workers:
    /// the cache vector may not grow during a fan-out.  run() calls it
    /// itself.
    void ensure_capacity(std::size_t population);

    /// Trains exactly one client -- the work item the round engine posts
    /// to the pool, whose completion becomes an arrival event.  Identical
    /// math to the matching run() slot (same Rng fork, same kernels).
    /// Safe to call concurrently for *distinct* client ids once
    /// ensure_capacity(clients.size()) has run; emits a "local.client"
    /// span under the caller's telemetry context.
    [[nodiscard]] GradientUpdate train_one(const std::vector<Client>& clients,
                                           std::size_t client_id,
                                           std::span<const float> global_weights,
                                           const ml::SgdParams& sgd,
                                           std::uint64_t round,
                                           std::uint64_t root_seed);

    [[nodiscard]] const Options& options() const noexcept { return options_; }

private:
    /// Per-client caches, indexed by client id.  Distinct clients are
    /// touched by distinct parallel iterations, so no locking is needed;
    /// the vector is sized before the fan-out.
    struct ClientCache {
        ml::PackedBatch pack;
        ml::TrainWorkspace ws;
    };

    Options options_;
    std::vector<ClientCache> cache_;
};

}  // namespace fairbfl::fl
