#pragma once
// Client selection: Algorithm 1 line 3, "randomly select lambda*n clients".

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace fairbfl::fl {

/// Uniformly samples ceil(ratio * n) distinct client indices for a round.
/// `ratio` is the paper's lambda; clamped to (0, 1].  Deterministic in
/// (root_seed, round).
[[nodiscard]] std::vector<std::size_t> sample_clients(std::size_t n,
                                                      double ratio,
                                                      std::uint64_t round,
                                                      std::uint64_t root_seed);

/// Removes `excluded` ids from `selected` (the discarding strategy's client
/// selection: low-contribution clients "no longer participate before the
/// round").  Order of the survivors is preserved.
[[nodiscard]] std::vector<std::size_t> exclude_clients(
    std::vector<std::size_t> selected, const std::vector<std::size_t>& excluded);

}  // namespace fairbfl::fl
