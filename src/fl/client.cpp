#include "fl/client.hpp"

namespace fairbfl::fl {

GradientUpdate Client::local_update(std::span<const float> global_weights,
                                    const ml::SgdParams& sgd,
                                    std::uint64_t round,
                                    std::uint64_t root_seed) const {
    ml::TrainWorkspace ws;
    return local_update(global_weights, sgd, round, root_seed, ws,
                        /*pack=*/nullptr);
}

GradientUpdate Client::local_update(std::span<const float> global_weights,
                                    const ml::SgdParams& sgd,
                                    std::uint64_t round,
                                    std::uint64_t root_seed,
                                    ml::TrainWorkspace& ws,
                                    const ml::PackedBatch* pack) const {
    GradientUpdate update;
    update.client = id_;
    update.round = round;
    update.num_samples = shard_.size();
    update.weights.assign(global_weights.begin(), global_weights.end());

    auto rng = support::Rng::fork(root_seed, /*stream=*/id_, round);
    const auto anchor = sgd.prox_mu > 0.0 ? global_weights
                                          : std::span<const float>{};
    const ml::SgdResult result =
        pack != nullptr
            ? sgd_train(*model_, update.weights, *pack, sgd, rng, ws, anchor)
            : sgd_train(*model_, update.weights, shard_, sgd, rng, ws,
                        anchor);
    update.local_loss = result.final_loss;
    return update;
}

std::vector<Client> make_clients(const ml::Model& model,
                                 const std::vector<ml::DatasetView>& shards) {
    std::vector<Client> clients;
    clients.reserve(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i)
        clients.emplace_back(static_cast<NodeId>(i), model, shards[i]);
    return clients;
}

}  // namespace fairbfl::fl
