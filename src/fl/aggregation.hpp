#pragma once
// Aggregation rules (Algorithm 1 line 24 and Eq. 1).
//
//  * Simple average:    w <- (1/K) sum_i w_i             (the paper's line 24)
//  * Sample-weighted:   w <- sum_i (|D_i|/|D|) w_i       (classic FedAvg)
//  * Fair (Eq. 1):      w <- sum_i p_i w_i,  p_i = theta_i / sum_k theta_k
//    where theta_i is the client's contribution score (cosine distance to
//    the global update, computed by the incentive layer).

#include <span>
#include <vector>

#include "fl/gradient.hpp"

namespace fairbfl::fl {

/// (1/K) sum of the updates.  Requires a non-empty set with equal widths.
[[nodiscard]] std::vector<float> simple_average(
    std::span<const GradientUpdate> updates);

/// Weighted sum with the given per-update weights; weights are normalized
/// internally (sum to 1).  Requires weights.size() == updates.size() and a
/// positive weight sum.
[[nodiscard]] std::vector<float> weighted_aggregate(
    std::span<const GradientUpdate> updates, std::span<const double> weights);

/// Classic FedAvg: weights proportional to self-reported sample counts.
[[nodiscard]] std::vector<float> sample_weighted_average(
    std::span<const GradientUpdate> updates);

/// Eq. 1 given precomputed contribution scores theta_i (one per update,
/// larger = farther).  Scores are used directly as weights after
/// normalization, matching the paper's p_i = theta_i / sum theta_k.
[[nodiscard]] std::vector<float> fair_aggregate(
    std::span<const GradientUpdate> updates, std::span<const double> theta);

}  // namespace fairbfl::fl
