#pragma once
// String-keyed clustering-algorithm factory -- the registry that replaced
// the old incentive::ClusteringChoice enum.  Mirrors core::SystemRegistry:
// Algorithm 2's "any suitable clustering algorithm" resolves by key
// ("dbscan", "kmeans", or anything an adopter registers at startup), so
// `fairbfl_sim --clustering=<key>` reaches new algorithms without enum or
// switch edits anywhere in the pipeline.

#include <functional>
#include <memory>
#include <string_view>

#include "cluster/dbscan.hpp"
#include "cluster/factory_registry.hpp"
#include "cluster/kmeans.hpp"

namespace fairbfl::cluster {

/// Per-family tuning every factory can read; unused families stay at their
/// defaults (the SystemSpec pattern).
struct ClusteringConfig {
    DbscanParams dbscan;
    KMeansParams kmeans;
};

class ClusteringRegistry
    : public FactoryRegistry<
          std::function<std::unique_ptr<ClusteringAlgorithm>(
              const ClusteringConfig&)>> {
public:
    ClusteringRegistry() : FactoryRegistry("clustering algorithm") {}

    /// Builds the algorithm `name` configures.  Throws std::out_of_range
    /// listing the known names when it is not registered.
    [[nodiscard]] std::unique_ptr<ClusteringAlgorithm> make(
        std::string_view name, const ClusteringConfig& config) const {
        return find(name)(config);
    }

    /// The process-wide registry, "dbscan" and "kmeans" pre-registered.
    static ClusteringRegistry& global();
};

}  // namespace fairbfl::cluster
