#include "cluster/registry.hpp"

namespace fairbfl::cluster {

namespace {

void register_builtin_algorithms(ClusteringRegistry& registry) {
    registry.add("dbscan", [](const ClusteringConfig& config)
                     -> std::unique_ptr<ClusteringAlgorithm> {
        return std::make_unique<Dbscan>(config.dbscan);
    });
    registry.add("kmeans", [](const ClusteringConfig& config)
                     -> std::unique_ptr<ClusteringAlgorithm> {
        return std::make_unique<KMeans>(config.kmeans);
    });
}

}  // namespace

ClusteringRegistry& ClusteringRegistry::global() {
    static ClusteringRegistry* registry = [] {
        auto* r = new ClusteringRegistry;
        register_builtin_algorithms(*r);
        return r;
    }();
    return *registry;
}

}  // namespace fairbfl::cluster
