#pragma once
// k-means (Lloyd's algorithm with k-means++ seeding) -- the alternate
// clustering algorithm for Algorithm 2, demonstrating the paper's claim
// that "any suitable clustering algorithm can be used here as needed".
//
// Under the cosine metric, points are L2-normalized first (spherical
// k-means), so centroids live on the unit sphere like the gradients'
// direction vectors.

#include "cluster/clustering.hpp"
#include "support/rng.hpp"

namespace fairbfl::cluster {

struct KMeansParams {
    std::size_t k = 2;
    std::size_t max_iterations = 50;
    Metric metric = Metric::kCosine;
    std::uint64_t seed = 42;
};

class KMeans final : public ClusteringAlgorithm {
public:
    explicit KMeans(KMeansParams params = {}) noexcept : params_(params) {}

    [[nodiscard]] ClusterResult cluster(
        std::span<const std::vector<float>> points) const override;
    [[nodiscard]] const char* name() const override { return "kmeans"; }

    [[nodiscard]] const KMeansParams& params() const noexcept {
        return params_;
    }

private:
    KMeansParams params_;
};

}  // namespace fairbfl::cluster
