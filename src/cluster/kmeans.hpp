#pragma once
// k-means (Lloyd's algorithm with k-means++ seeding) -- the alternate
// clustering algorithm for Algorithm 2, demonstrating the paper's claim
// that "any suitable clustering algorithm can be used here as needed".
//
// Under the cosine metric, points are L2-normalized first (spherical
// k-means), so centroids live on the unit sphere like the gradients'
// direction vectors.

#include "cluster/clustering.hpp"
#include "support/rng.hpp"

namespace fairbfl::cluster {

struct KMeansParams {
    std::size_t k = 2;
    std::size_t max_iterations = 50;
    Metric metric = Metric::kCosine;
    std::uint64_t seed = 42;
};

class KMeans final : public ClusteringAlgorithm {
public:
    explicit KMeans(KMeansParams params = {}) noexcept : params_(params) {}

    [[nodiscard]] ClusterResult cluster(
        std::span<const std::vector<float>> points) const override;
    /// Reuses a prebuilt index for the k-means++ seeding phase (every
    /// candidate centroid is still a data point there, so seed distances
    /// are plain index queries).  Lloyd iterations move the centroids off
    /// the data and always recompute exactly.  The index is used only when
    /// its metric matches params().metric.
    ///
    /// Caveat: index entries are at best mathematically equal -- and for
    /// approximate backends only approximately equal -- to what cluster()
    /// computes (blocked Euclidean kernel; cosine on unnormalized
    /// originals; sketch/pivot space), and seeding feeds them into
    /// cumulative probability sampling -- so this path may pick a
    /// different (equally valid) seed than cluster() and label the same
    /// partition differently.  Use it for throughput when a matching
    /// index already exists, not when exact reproduction of the
    /// points-path labels matters.
    [[nodiscard]] ClusterResult cluster_with(
        const GradientIndex& index,
        std::span<const std::vector<float>> points) const override;
    using ClusteringAlgorithm::cluster_with;
    [[nodiscard]] Metric preferred_metric() const noexcept override {
        return params_.metric;
    }
    /// Seeding touches one index column per seed -- O(n k) lookups -- so
    /// under "auto" no precomputed structure is built for it.  With the
    /// "lazy" backend and the Euclidean metric, cluster_with reproduces
    /// cluster() bit-for-bit (the seed distances are the same calls on
    /// the same vectors); the cosine caveat above still applies.
    [[nodiscard]] std::string_view preferred_index() const noexcept override {
        return "lazy";
    }
    [[nodiscard]] const char* name() const override { return "kmeans"; }

    [[nodiscard]] const KMeansParams& params() const noexcept {
        return params_;
    }

private:
    [[nodiscard]] ClusterResult cluster_impl(
        std::span<const std::vector<float>> points,
        const GradientIndex* index) const;

    KMeansParams params_;
};

}  // namespace fairbfl::cluster
