#include "cluster/dbscan.hpp"

#include <algorithm>
#include <deque>

namespace fairbfl::cluster {

ClusterResult Dbscan::cluster(
    std::span<const std::vector<float>> points) const {
    if (points.empty()) return {};
    return cluster_index(ExactIndex(params_.metric, points));
}

ClusterResult Dbscan::cluster_with(
    const GradientIndex& index,
    std::span<const std::vector<float>> points) const {
    if (points.empty()) return {};
    if (index.metric() != params_.metric || index.size() != points.size())
        return cluster(points);
    return cluster_index(index);
}

ClusterResult Dbscan::cluster_index(const GradientIndex& index) const {
    ClusterResult result;
    const std::size_t n = index.size();
    result.labels.assign(n, ClusterResult::kNoise);
    if (n == 0) return result;

    const double eps =
        params_.adaptive_eps
            ? params_.adaptive_eps_scale * suggest_eps(index, params_.min_pts)
            : params_.eps;

    // Neighbourhoods (self included, matching the classic formulation).
    std::vector<std::vector<std::size_t>> neighbours(n);
    for (std::size_t i = 0; i < n; ++i)
        neighbours[i] = index.neighbors_within(i, eps);

    constexpr int kUnvisited = -2;
    std::vector<int> label(n, kUnvisited);
    int next_cluster = 0;

    for (std::size_t seed = 0; seed < n; ++seed) {
        if (label[seed] != kUnvisited) continue;
        if (neighbours[seed].size() < params_.min_pts) {
            label[seed] = ClusterResult::kNoise;
            continue;
        }
        // Grow a new cluster from this core point (BFS frontier).
        const int cluster = next_cluster++;
        label[seed] = cluster;
        std::deque<std::size_t> frontier(neighbours[seed].begin(),
                                         neighbours[seed].end());
        while (!frontier.empty()) {
            const std::size_t p = frontier.front();
            frontier.pop_front();
            if (label[p] == ClusterResult::kNoise)
                label[p] = cluster;  // border point adopted by the cluster
            if (label[p] != kUnvisited) continue;
            label[p] = cluster;
            if (neighbours[p].size() >= params_.min_pts) {
                frontier.insert(frontier.end(), neighbours[p].begin(),
                                neighbours[p].end());
            }
        }
    }

    result.labels.assign(label.begin(), label.end());
    result.num_clusters = next_cluster;
    return result;
}

namespace {

/// Shared k-distance implementation: `fill_row` writes point i's n
/// distances into its argument.  Callers guarantee n > min_pts.
template <typename FillRow>
double median_kth_distance(std::size_t n, std::size_t min_pts,
                           FillRow&& fill_row) {
    std::vector<double> kth;
    kth.reserve(n);
    std::vector<double> row(n);
    for (std::size_t i = 0; i < n; ++i) {
        fill_row(i, row);
        std::nth_element(row.begin(),
                         row.begin() + static_cast<std::ptrdiff_t>(min_pts),
                         row.end());
        kth.push_back(row[min_pts]);
    }
    std::nth_element(kth.begin(),
                     kth.begin() + static_cast<std::ptrdiff_t>(kth.size() / 2),
                     kth.end());
    return kth[kth.size() / 2];
}

}  // namespace

double suggest_eps(std::span<const std::vector<float>> points,
                   std::size_t min_pts, Metric metric) {
    const std::size_t n = points.size();
    if (n <= min_pts) return 0.0;
    return suggest_eps(ExactIndex(metric, points), min_pts);
}

double suggest_eps(const GradientIndex& index, std::size_t min_pts) {
    const std::size_t n = index.size();
    if (n <= min_pts) return 0.0;
    // Per-point k-distance through the index's own query: backends with a
    // pruned search (the banded sketch index) answer in o(n) per point,
    // and the contract on kth_distance (an order statistic is a value,
    // not a scan order) keeps the median bit-identical to the old
    // materialize-the-row path for every backend.
    std::vector<double> kth;
    kth.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        kth.push_back(index.kth_distance(i, min_pts));
    std::nth_element(kth.begin(),
                     kth.begin() + static_cast<std::ptrdiff_t>(kth.size() / 2),
                     kth.end());
    return kth[kth.size() / 2];
}

double suggest_eps(const DistanceMatrix& dist, std::size_t min_pts) {
    const std::size_t n = dist.size();
    if (n <= min_pts) return 0.0;
    return median_kth_distance(n, min_pts,
                               [&](std::size_t i, std::span<double> row) {
                                   const auto src = dist.row(i);
                                   std::copy(src.begin(), src.end(),
                                             row.begin());
                               });
}

}  // namespace fairbfl::cluster
