#include "cluster/dbscan.hpp"

#include <algorithm>
#include <deque>

namespace fairbfl::cluster {

ClusterResult Dbscan::cluster(
    std::span<const std::vector<float>> points) const {
    if (points.empty()) return {};
    return cluster_matrix(DistanceMatrix(params_.metric, points));
}

ClusterResult Dbscan::cluster_with(
    const DistanceMatrix& dist,
    std::span<const std::vector<float>> points) const {
    if (points.empty()) return {};
    if (dist.metric() != params_.metric || dist.size() != points.size())
        return cluster(points);
    return cluster_matrix(dist);
}

ClusterResult Dbscan::cluster_matrix(const DistanceMatrix& dist) const {
    ClusterResult result;
    const std::size_t n = dist.size();
    result.labels.assign(n, ClusterResult::kNoise);
    if (n == 0) return result;

    // Neighbourhoods (self included, matching the classic formulation).
    std::vector<std::vector<std::size_t>> neighbours(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = dist.row(i);
        for (std::size_t j = 0; j < n; ++j) {
            if (row[j] <= params_.eps) neighbours[i].push_back(j);
        }
    }

    constexpr int kUnvisited = -2;
    std::vector<int> label(n, kUnvisited);
    int next_cluster = 0;

    for (std::size_t seed = 0; seed < n; ++seed) {
        if (label[seed] != kUnvisited) continue;
        if (neighbours[seed].size() < params_.min_pts) {
            label[seed] = ClusterResult::kNoise;
            continue;
        }
        // Grow a new cluster from this core point (BFS frontier).
        const int cluster = next_cluster++;
        label[seed] = cluster;
        std::deque<std::size_t> frontier(neighbours[seed].begin(),
                                         neighbours[seed].end());
        while (!frontier.empty()) {
            const std::size_t p = frontier.front();
            frontier.pop_front();
            if (label[p] == ClusterResult::kNoise)
                label[p] = cluster;  // border point adopted by the cluster
            if (label[p] != kUnvisited) continue;
            label[p] = cluster;
            if (neighbours[p].size() >= params_.min_pts) {
                frontier.insert(frontier.end(), neighbours[p].begin(),
                                neighbours[p].end());
            }
        }
    }

    result.labels.assign(label.begin(), label.end());
    result.num_clusters = next_cluster;
    return result;
}

double suggest_eps(std::span<const std::vector<float>> points,
                   std::size_t min_pts, Metric metric) {
    const std::size_t n = points.size();
    if (n <= min_pts) return 0.1;
    return suggest_eps(DistanceMatrix(metric, points), min_pts);
}

double suggest_eps(const DistanceMatrix& dist, std::size_t min_pts) {
    const std::size_t n = dist.size();
    if (n <= min_pts) return 0.1;
    std::vector<double> kth;
    kth.reserve(n);
    std::vector<double> row(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto src = dist.row(i);
        std::copy(src.begin(), src.end(), row.begin());
        std::nth_element(row.begin(),
                         row.begin() + static_cast<std::ptrdiff_t>(min_pts),
                         row.end());
        kth.push_back(row[min_pts]);
    }
    std::nth_element(kth.begin(),
                     kth.begin() + static_cast<std::ptrdiff_t>(kth.size() / 2),
                     kth.end());
    return kth[kth.size() / 2];
}

}  // namespace fairbfl::cluster
