#pragma once
// Distance metrics and the pairwise-distance matrix used by the clustering
// algorithms of Algorithm 2.
//
// The matrix is the round hot path: Algorithm 2 clusters all n client
// updates plus the provisional global, an O(n^2 d) job.  It is therefore a
// first-class, reusable artifact -- built once per round (in parallel,
// with per-point norm caching under the cosine metric) and shared by the
// eps heuristic, DBSCAN, k-means++ seeding, the theta scores, and the
// nearest-cluster fallback, instead of each stage recomputing it.

#include <cstdint>
#include <span>
#include <vector>

#include "support/parallel.hpp"

namespace fairbfl::cluster {

enum class Metric : std::uint8_t {
    kCosine = 0,     ///< 1 - cos(x, y); the paper's default (theta_i)
    kEuclidean = 1,  ///< L2 distance
};

/// Distance between two vectors under the metric (exact, left-to-right
/// accumulation -- bit-identical to the theta arithmetic).
[[nodiscard]] double distance(Metric metric, std::span<const float> a,
                              std::span<const float> b) noexcept;

/// Symmetric n x n pairwise distance matrix (row-major, zero diagonal).
///
/// Construction fans the row range out over the thread pool; every entry
/// is computed independently and written exactly once, so the values are
/// identical under any thread count.  Under the cosine metric the per-point
/// L2 norms are computed once and cached (one dot per pair instead of
/// three), bit-identical to pairwise cosine_distance.  Under the Euclidean
/// metric the blocked kernel is used: entries may differ from the exact
/// kernel in the last ulps, which is safe because every consumer compares
/// distances (eps thresholds, nearest-neighbour argmins) rather than
/// feeding them into reward or training arithmetic.
class DistanceMatrix {
public:
    /// Empty matrix (size() == 0).
    DistanceMatrix() = default;

    /// `pool` carries the row fan-out; the default shares the process
    /// pool.  Values are identical for any pool size (the test seam for
    /// the parallel-vs-serial determinism check).
    DistanceMatrix(Metric metric, std::span<const std::vector<float>> points,
                   support::ThreadPool& pool = support::ThreadPool::global());

    [[nodiscard]] double at(std::size_t i, std::size_t j) const noexcept {
        return values_[i * n_ + j];
    }
    /// Row i as a contiguous span of n distances.
    [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
        return {values_.data() + i * n_, n_};
    }
    [[nodiscard]] std::size_t size() const noexcept { return n_; }
    [[nodiscard]] Metric metric() const noexcept { return metric_; }

    /// Cached per-point L2 norms; empty unless the metric is cosine.
    [[nodiscard]] std::span<const double> norms() const noexcept {
        return norms_;
    }

private:
    Metric metric_ = Metric::kCosine;
    std::size_t n_ = 0;
    std::vector<double> values_;
    std::vector<double> norms_;
};

}  // namespace fairbfl::cluster
