#pragma once
// Distance metrics and the pairwise-distance matrix used by the clustering
// algorithms of Algorithm 2.

#include <cstdint>
#include <span>
#include <vector>

namespace fairbfl::cluster {

enum class Metric : std::uint8_t {
    kCosine = 0,     ///< 1 - cos(x, y); the paper's default (theta_i)
    kEuclidean = 1,  ///< L2 distance
};

/// Distance between two vectors under the metric.
[[nodiscard]] double distance(Metric metric, std::span<const float> a,
                              std::span<const float> b) noexcept;

/// Symmetric n x n pairwise distance matrix (row-major, zero diagonal).
class DistanceMatrix {
public:
    DistanceMatrix(Metric metric,
                   std::span<const std::vector<float>> points);

    [[nodiscard]] double at(std::size_t i, std::size_t j) const noexcept {
        return values_[i * n_ + j];
    }
    [[nodiscard]] std::size_t size() const noexcept { return n_; }

private:
    std::size_t n_;
    std::vector<double> values_;
};

}  // namespace fairbfl::cluster
