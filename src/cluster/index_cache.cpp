#include "cluster/index_cache.hpp"

#include <utility>

#include "support/vecmath.hpp"
#include "telemetry/telemetry.hpp"

namespace fairbfl::cluster {

namespace {

/// Backend-identity fields: a cached index can only serve a request that
/// would have built it identically.  refresh_threshold is deliberately
/// not compared -- it tunes the drift scan, not the index contents.
bool params_compatible(const IndexParams& a, const IndexParams& b) noexcept {
    return a.metric == b.metric && a.projection_dims == b.projection_dims &&
           a.pivots == b.pivots && a.seed == b.seed;
}

bool shape_compatible(std::span<const std::vector<float>> points,
                      const std::vector<std::vector<float>>& cached) noexcept {
    if (points.size() != cached.size() || points.empty()) return false;
    return points[0].size() == cached[0].size();
}

/// Per-point drift flags: moved when the squared L2 drift reaches
/// threshold^2 times the squared norm of the cached point.  `>=` so a
/// zero threshold flags every point (including unchanged ones), making
/// update() recompute everything -- the bit-for-bit rebuild equivalence
/// the incremental tests pin.  Blocked kernels: drift detection is
/// comparison-only, never pinned arithmetic.
std::vector<std::uint8_t> drift_flags(
    std::span<const std::vector<float>> points,
    const std::vector<std::vector<float>>& cached, double threshold) {
    std::vector<std::uint8_t> moved(points.size(), 0);
    const double t2 = threshold * threshold;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double drift2 =
            support::squared_distance_blocked(points[i], cached[i]);
        const double scale2 = support::dot_blocked(cached[i], cached[i]);
        moved[i] = drift2 >= t2 * scale2 ? 1 : 0;
    }
    return moved;
}

}  // namespace

std::unique_ptr<GradientIndex> IndexCache::acquire(
    std::size_t slot, std::string_view key,
    std::span<const std::vector<float>> points, const IndexParams& params,
    support::ThreadPool& pool) {
    Entry entry;
    bool have_entry = false;
    {
        support::MutexLock lock(mutex_);
        const auto it = slots_.find(slot);
        if (it != slots_.end()) {
            entry = std::move(it->second);
            slots_.erase(it);
            have_entry = true;
        }
    }
    if (have_entry && entry.index != nullptr && entry.key == key &&
        params_compatible(entry.params, params) &&
        shape_compatible(points, entry.points)) {
        const std::vector<std::uint8_t> moved =
            drift_flags(points, entry.points, params.refresh_threshold);
        // Same instrumentation as IndexRegistry::build: the update *is*
        // this round's index-build work, so perf artifacts keep reading
        // seconds.index_build / index_peak_bytes unchanged.
        telemetry::Span span(telemetry::labels::index_build());
        const bool updated = entry.index->update(points, moved, pool);
        span.close();
        if (updated) {
            telemetry::counter_max(telemetry::labels::index_bytes(),
                                   entry.index->storage_bytes());
            telemetry::counter_add(telemetry::labels::index_reuse(), 1);
            return std::move(entry.index);
        }
    }
    return IndexRegistry::global().build(key, points, params, pool);
}

void IndexCache::release(std::size_t slot, std::string_view key,
                         std::vector<std::vector<float>> points,
                         const IndexParams& params,
                         std::unique_ptr<GradientIndex> index) {
    if (index == nullptr || !index->supports_update()) return;
    Entry entry{std::string(key), params, std::move(points),
                std::move(index)};
    support::MutexLock lock(mutex_);
    slots_.insert_or_assign(slot, std::move(entry));
}

}  // namespace fairbfl::cluster
