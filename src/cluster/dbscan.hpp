#pragma once
// DBSCAN (Ester et al., KDD'96) -- the paper's default clustering algorithm
// for contribution identification ("we use DBSCAN in experiments by default
// because it is efficient and straightforward").
//
// Density-based: points with >= min_pts neighbours within eps become cores;
// cores chain into clusters; everything unreachable is noise.  Forged
// gradients land in noise / minority clusters because they are far (in
// cosine distance) from the honest majority.
//
// The scan is written against the GradientIndex neighborhood API, so it
// runs unchanged over the exact matrix or any approximate backend.

#include <memory>

#include "cluster/clustering.hpp"

namespace fairbfl::cluster {

struct DbscanParams {
    double eps = 0.05;         ///< neighbourhood radius (metric units)
    std::size_t min_pts = 3;   ///< neighbours (incl. self) to be a core
    Metric metric = Metric::kCosine;
    /// When true, `eps` is re-estimated per scan from the k-distance
    /// sample of the index being scanned (suggest_eps), scaled by
    /// adaptive_eps_scale.  This keeps detection working as gradients
    /// concentrate with convergence, and -- because the sample lives in
    /// the index's own geometry -- stays consistent under approximate
    /// backends.  Algorithm 2's default config enables it.
    bool adaptive_eps = false;
    /// Scale applied to the suggested eps (>1 loosens the honest cluster).
    double adaptive_eps_scale = 2.0;
};

class Dbscan final : public ClusteringAlgorithm {
public:
    explicit Dbscan(DbscanParams params = {}) noexcept : params_(params) {}

    [[nodiscard]] ClusterResult cluster(
        std::span<const std::vector<float>> points) const override;
    /// Reuses a prebuilt index when its metric matches params().metric
    /// (else rebuilds an exact one under the configured metric --
    /// correctness over reuse).
    [[nodiscard]] ClusterResult cluster_with(
        const GradientIndex& index,
        std::span<const std::vector<float>> points) const override;
    using ClusteringAlgorithm::cluster_with;
    [[nodiscard]] Metric preferred_metric() const noexcept override {
        return params_.metric;
    }
    [[nodiscard]] const char* name() const override { return "dbscan"; }

    [[nodiscard]] const DbscanParams& params() const noexcept {
        return params_;
    }

private:
    /// The scan itself; `index` must cover exactly the point set.
    [[nodiscard]] ClusterResult cluster_index(
        const GradientIndex& index) const;

    DbscanParams params_;
};

/// Heuristic eps: median of each point's k-th nearest-neighbour distance
/// (k = min_pts).  Lets Algorithm 2 adapt eps per round as gradients shrink
/// with convergence.
///
/// When n <= min_pts there is no k-th-neighbour sample to estimate from;
/// all overloads return 0.0, under which DBSCAN (min_pts > 1) labels
/// everything noise and Algorithm 2 degrades to plain fair aggregation --
/// instead of clustering tiny rounds on an arbitrary made-up radius.
[[nodiscard]] double suggest_eps(std::span<const std::vector<float>> points,
                                 std::size_t min_pts,
                                 Metric metric = Metric::kCosine);

/// Same heuristic reading a prebuilt index: the k-distance sample lives in
/// the index's own geometry, so the suggested eps is always consistent
/// with the distances the scan will threshold against.
[[nodiscard]] double suggest_eps(const GradientIndex& index,
                                 std::size_t min_pts);

/// Same heuristic reading a prebuilt dense matrix.
[[nodiscard]] double suggest_eps(const DistanceMatrix& dist,
                                 std::size_t min_pts);

}  // namespace fairbfl::cluster
