#pragma once
// DBSCAN (Ester et al., KDD'96) -- the paper's default clustering algorithm
// for contribution identification ("we use DBSCAN in experiments by default
// because it is efficient and straightforward").
//
// Density-based: points with >= min_pts neighbours within eps become cores;
// cores chain into clusters; everything unreachable is noise.  Forged
// gradients land in noise / minority clusters because they are far (in
// cosine distance) from the honest majority.

#include <memory>

#include "cluster/clustering.hpp"

namespace fairbfl::cluster {

struct DbscanParams {
    double eps = 0.05;         ///< neighbourhood radius (metric units)
    std::size_t min_pts = 3;   ///< neighbours (incl. self) to be a core
    Metric metric = Metric::kCosine;
};

class Dbscan final : public ClusteringAlgorithm {
public:
    explicit Dbscan(DbscanParams params = {}) noexcept : params_(params) {}

    [[nodiscard]] ClusterResult cluster(
        std::span<const std::vector<float>> points) const override;
    /// Reuses a prebuilt matrix when its metric matches params().metric
    /// (else rebuilds under the configured metric -- correctness over
    /// reuse).
    [[nodiscard]] ClusterResult cluster_with(
        const DistanceMatrix& dist,
        std::span<const std::vector<float>> points) const override;
    [[nodiscard]] const char* name() const override { return "dbscan"; }

    [[nodiscard]] const DbscanParams& params() const noexcept {
        return params_;
    }

private:
    /// The scan itself; `dist` must cover exactly the point set.
    [[nodiscard]] ClusterResult cluster_matrix(
        const DistanceMatrix& dist) const;

    DbscanParams params_;
};

/// Heuristic eps: median of each point's k-th nearest-neighbour distance
/// (k = min_pts).  Lets Algorithm 2 adapt eps per round as gradients shrink
/// with convergence.
[[nodiscard]] double suggest_eps(std::span<const std::vector<float>> points,
                                 std::size_t min_pts,
                                 Metric metric = Metric::kCosine);

/// Same heuristic reading a prebuilt matrix instead of recomputing the
/// pairwise distances.
[[nodiscard]] double suggest_eps(const DistanceMatrix& dist,
                                 std::size_t min_pts);

}  // namespace fairbfl::cluster
