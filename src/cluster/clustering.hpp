#pragma once
// Common clustering interface.  The paper's Algorithm 2 is parameterized on
// "any suitable clustering algorithm"; this interface is the seam where
// adopters plug theirs in (DBSCAN and k-means ship in-tree).

#include <memory>
#include <span>
#include <vector>

#include "cluster/distance.hpp"
#include "cluster/index.hpp"

namespace fairbfl::cluster {

struct ClusterResult {
    /// Per-point cluster label; kNoise for DBSCAN outliers.
    std::vector<int> labels;
    /// Number of clusters found (labels range over [0, num_clusters)).
    int num_clusters = 0;

    static constexpr int kNoise = -1;

    /// True when points i and j share a (non-noise) cluster.
    [[nodiscard]] bool same_cluster(std::size_t i, std::size_t j) const {
        return labels[i] != kNoise && labels[i] == labels[j];
    }
    /// Members of a cluster.
    [[nodiscard]] std::vector<std::size_t> members_of(int cluster) const {
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < labels.size(); ++i)
            if (labels[i] == cluster) members.push_back(i);
        return members;
    }
};

class ClusteringAlgorithm {
public:
    virtual ~ClusteringAlgorithm() = default;
    [[nodiscard]] virtual ClusterResult cluster(
        std::span<const std::vector<float>> points) const = 0;

    /// Clusters `points` querying a prebuilt GradientIndex over the same
    /// points (the round pipeline builds the index once -- exact matrix,
    /// random-projection sketch, or pivot signatures -- and shares it
    /// across every stage).  Implementations use `index` only when its
    /// metric matches their own; the default ignores it.
    [[nodiscard]] virtual ClusterResult cluster_with(
        const GradientIndex& index,
        std::span<const std::vector<float>> points) const {
        (void)index;
        return cluster(points);
    }

    /// Deprecated pre-GradientIndex seam: wraps the matrix in an
    /// ExactIndex (copying it) and forwards.  New code should build the
    /// index once and call the GradientIndex overload.
    [[nodiscard,
      deprecated("wrap the matrix in cluster::ExactIndex and call "
                 "cluster_with(const GradientIndex&, points)")]]
    ClusterResult cluster_with(
        const DistanceMatrix& dist,
        std::span<const std::vector<float>> points) const {
        return cluster_with(ExactIndex(dist), points);
    }

    /// The metric this algorithm's configuration clusters under -- the
    /// geometry Algorithm 2 builds the shared index in.
    [[nodiscard]] virtual Metric preferred_metric() const noexcept {
        return Metric::kCosine;
    }

    /// The IndexRegistry key that matches this algorithm's access pattern
    /// -- what Algorithm 2 builds when the index selection is "auto".
    /// Dense neighbourhood scans amortize a precomputed "exact" matrix
    /// (the default); algorithms touching only O(n) distances (k-means++
    /// seeding) override to "lazy" so no O(n^2 d) structure is built for
    /// queries that never read it.
    [[nodiscard]] virtual std::string_view preferred_index() const noexcept {
        return "exact";
    }

    [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace fairbfl::cluster
