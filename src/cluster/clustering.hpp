#pragma once
// Common clustering interface.  The paper's Algorithm 2 is parameterized on
// "any suitable clustering algorithm"; this interface is the seam where
// adopters plug theirs in (DBSCAN and k-means ship in-tree).

#include <memory>
#include <span>
#include <vector>

#include "cluster/distance.hpp"

namespace fairbfl::cluster {

struct ClusterResult {
    /// Per-point cluster label; kNoise for DBSCAN outliers.
    std::vector<int> labels;
    /// Number of clusters found (labels range over [0, num_clusters)).
    int num_clusters = 0;

    static constexpr int kNoise = -1;

    /// True when points i and j share a (non-noise) cluster.
    [[nodiscard]] bool same_cluster(std::size_t i, std::size_t j) const {
        return labels[i] != kNoise && labels[i] == labels[j];
    }
    /// Members of a cluster.
    [[nodiscard]] std::vector<std::size_t> members_of(int cluster) const {
        std::vector<std::size_t> members;
        for (std::size_t i = 0; i < labels.size(); ++i)
            if (labels[i] == cluster) members.push_back(i);
        return members;
    }
};

class ClusteringAlgorithm {
public:
    virtual ~ClusteringAlgorithm() = default;
    [[nodiscard]] virtual ClusterResult cluster(
        std::span<const std::vector<float>> points) const = 0;

    /// Clusters `points` reusing a prebuilt pairwise matrix over the same
    /// points (the round pipeline builds it once and shares it across
    /// every stage).  Implementations use `dist` only when its metric
    /// matches their own; the default ignores it.
    [[nodiscard]] virtual ClusterResult cluster_with(
        const DistanceMatrix& dist,
        std::span<const std::vector<float>> points) const {
        (void)dist;
        return cluster(points);
    }

    [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace fairbfl::cluster
