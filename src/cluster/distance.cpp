#include "cluster/distance.hpp"

#include <cmath>

#include "support/parallel.hpp"
#include "support/vecmath.hpp"

namespace fairbfl::cluster {

double distance(Metric metric, std::span<const float> a,
                std::span<const float> b) noexcept {
    switch (metric) {
        case Metric::kCosine:
            return support::cosine_distance(a, b);
        case Metric::kEuclidean:
            return std::sqrt(support::squared_distance(a, b));
    }
    return 0.0;
}

DistanceMatrix::DistanceMatrix(Metric metric,
                               std::span<const std::vector<float>> points,
                               support::ThreadPool& pool)
    : metric_(metric),
      n_(points.size()),
      values_(points.size() * points.size(), 0.0) {
    if (n_ < 2) return;
    if (metric_ == Metric::kCosine) norms_ = support::norms_of(points, pool);

    // Row-parallel upper triangle; task i owns every (i, j > i) pair and
    // its mirror slot, so writes never overlap.
    support::parallel_for(
        0, n_ - 1,
        [&](std::size_t i) {
            for (std::size_t j = i + 1; j < n_; ++j) {
                const double d =
                    metric_ == Metric::kCosine
                        ? support::cosine_distance_cached(
                              points[i], points[j], norms_[i], norms_[j])
                        : std::sqrt(support::squared_distance_blocked(
                              points[i], points[j]));
                values_[i * n_ + j] = d;
                values_[j * n_ + i] = d;
            }
        },
        pool);
}

}  // namespace fairbfl::cluster
