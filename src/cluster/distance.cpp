#include "cluster/distance.hpp"

#include <cmath>

#include "support/vecmath.hpp"

namespace fairbfl::cluster {

double distance(Metric metric, std::span<const float> a,
                std::span<const float> b) noexcept {
    switch (metric) {
        case Metric::kCosine:
            return support::cosine_distance(a, b);
        case Metric::kEuclidean:
            return std::sqrt(support::squared_distance(a, b));
    }
    return 0.0;
}

DistanceMatrix::DistanceMatrix(Metric metric,
                               std::span<const std::vector<float>> points)
    : n_(points.size()), values_(points.size() * points.size(), 0.0) {
    for (std::size_t i = 0; i < n_; ++i) {
        for (std::size_t j = i + 1; j < n_; ++j) {
            const double d = distance(metric, points[i], points[j]);
            values_[i * n_ + j] = d;
            values_[j * n_ + i] = d;
        }
    }
}

}  // namespace fairbfl::cluster
