#include "cluster/index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/rng.hpp"
#include "support/vecmath.hpp"
#include "telemetry/telemetry.hpp"

namespace fairbfl::cluster {

// --- GradientIndex defaults ------------------------------------------------
// Generic fallbacks in terms of distance(); matrix-backed indexes override
// with row scans over their own storage.

std::vector<std::size_t> GradientIndex::neighbors_within(std::size_t i,
                                                         double eps) const {
    std::vector<std::size_t> neighbors;
    const std::size_t n = size();
    for (std::size_t j = 0; j < n; ++j) {
        if (distance(i, j) <= eps) neighbors.push_back(j);
    }
    return neighbors;
}

std::size_t GradientIndex::nearest_of(
    std::size_t i, std::span<const std::size_t> candidates) const {
    double best = std::numeric_limits<double>::infinity();
    std::size_t nearest = candidates.front();
    for (const std::size_t candidate : candidates) {
        const double d = distance(i, candidate);
        if (d < best) {
            best = d;
            nearest = candidate;
        }
    }
    return nearest;
}

void GradientIndex::distances_from(std::size_t i,
                                   std::span<double> out) const {
    const std::size_t n = size();
    for (std::size_t j = 0; j < n; ++j) out[j] = distance(i, j);
}

double GradientIndex::kth_distance(std::size_t i, std::size_t k) const {
    std::vector<double> row(size());
    distances_from(i, row);
    std::nth_element(row.begin(), row.begin() + static_cast<std::ptrdiff_t>(k),
                     row.end());
    return row[k];
}

bool GradientIndex::update(std::span<const std::vector<float>> /*points*/,
                           std::span<const std::uint8_t> /*moved*/,
                           support::ThreadPool& /*pool*/) {
    return false;
}

// --- MatrixBackedIndex -----------------------------------------------------

std::vector<std::size_t> MatrixBackedIndex::neighbors_within(
    std::size_t i, double eps) const {
    std::vector<std::size_t> neighbors;
    const auto row = matrix_.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
        if (row[j] <= eps) neighbors.push_back(j);
    }
    return neighbors;
}

std::size_t MatrixBackedIndex::nearest_of(
    std::size_t i, std::span<const std::size_t> candidates) const {
    const auto row = matrix_.row(i);
    double best = std::numeric_limits<double>::infinity();
    std::size_t nearest = candidates.front();
    for (const std::size_t candidate : candidates) {
        if (row[candidate] < best) {
            best = row[candidate];
            nearest = candidate;
        }
    }
    return nearest;
}

void MatrixBackedIndex::distances_from(std::size_t i,
                                       std::span<double> out) const {
    const auto row = matrix_.row(i);
    std::copy(row.begin(), row.end(), out.begin());
}

// --- RandomProjectionIndex -------------------------------------------------

namespace {

/// Conservative slack for the norm-difference lower bound: the triangle
/// inequality |  ||a|| - ||b||  | <= ||a - b|| holds in real arithmetic,
/// but norms and distances are each rounded once, so the banded pruning
/// widens every bound before excluding anything.
constexpr double kBandRelSlack = 1e-9;
constexpr double kBandAbsSlack = 1e-12;

double sketch_norm(std::span<const float> sketch) noexcept {
    return support::norm2(sketch);
}

}  // namespace

RandomProjectionIndex::RandomProjectionIndex(
    std::span<const std::vector<float>> points, const IndexParams& params,
    support::ThreadPool& pool)
    : metric_(params.metric), n_(points.size()) {
    if (points.empty()) return;
    const std::size_t dim = points[0].size();
    const std::size_t k = std::max<std::size_t>(params.projection_dims, 1);
    if (dim <= k || points.size() <= 2 * k) {
        // Below the break-even (see class comment) the sketches are the
        // originals: exact distances, cheaper than projecting.  The
        // fallback *reports* its exactness (exact() == true) so the theta
        // read-back reuses the matrix rows it already paid for instead of
        // recomputing the global's row.
        sketch_dims_ = dim;
        fallback_ = true;
        dense_ = DistanceMatrix(params.metric, points, pool);
        return;
    }
    sketch_dims_ = k;
    projection_ = support::gaussian_projection(dim, k, params.seed);
    sketches_ = support::project_rows(projection_, points, pool);
    norms_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) norms_[i] = sketch_norm(sketches_[i]);
    sort_by_norm();
}

void RandomProjectionIndex::sort_by_norm() {
    norm_order_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) norm_order_[i] = i;
    std::sort(norm_order_.begin(), norm_order_.end(),
              [&](std::size_t a, std::size_t b) {
                  if (norms_[a] != norms_[b]) return norms_[a] < norms_[b];
                  return a < b;
              });
}

std::pair<std::size_t, std::size_t> RandomProjectionIndex::norm_band(
    double lo, double hi) const {
    const auto begin = std::lower_bound(
        norm_order_.begin(), norm_order_.end(), lo,
        [&](std::size_t id, double value) { return norms_[id] < value; });
    const auto end = std::upper_bound(
        begin, norm_order_.end(), hi,
        [&](double value, std::size_t id) { return value < norms_[id]; });
    return {static_cast<std::size_t>(begin - norm_order_.begin()),
            static_cast<std::size_t>(end - norm_order_.begin())};
}

double RandomProjectionIndex::distance(std::size_t i, std::size_t j) const {
    if (fallback_) return dense_.at(i, j);
    if (i == j) return 0.0;
    // Exactly the kernels DistanceMatrix applies per pair, so on-demand
    // values are bit-identical to the dense sketch matrix this replaced.
    if (metric_ == Metric::kCosine) {
        return support::cosine_distance_cached(sketches_[i], sketches_[j],
                                               norms_[i], norms_[j]);
    }
    return std::sqrt(
        support::squared_distance_blocked(sketches_[i], sketches_[j]));
}

std::vector<std::size_t> RandomProjectionIndex::neighbors_within(
    std::size_t i, double eps) const {
    std::vector<std::size_t> neighbors;
    if (fallback_) {
        const auto row = dense_.row(i);
        for (std::size_t j = 0; j < row.size(); ++j)
            if (row[j] <= eps) neighbors.push_back(j);
        return neighbors;
    }
    if (metric_ != Metric::kEuclidean) {
        for (std::size_t j = 0; j < n_; ++j)
            if (distance(i, j) <= eps) neighbors.push_back(j);
        return neighbors;
    }
    // Banded scan: ||s_i - s_j|| >= | ||s_i|| - ||s_j|| |, so only the
    // norm band [||s_i|| - eps, ||s_i|| + eps] (widened by the FP slack)
    // can contain radius-eps neighbours.
    const double reach = eps * (1.0 + kBandRelSlack) + kBandAbsSlack;
    const auto [lo, hi] = norm_band(norms_[i] - reach, norms_[i] + reach);
    for (std::size_t r = lo; r < hi; ++r) {
        const std::size_t j = norm_order_[r];
        if (distance(i, j) <= eps) neighbors.push_back(j);
    }
    // Ascending ordinals, matching the dense row scan's output exactly.
    std::sort(neighbors.begin(), neighbors.end());
    return neighbors;
}

std::size_t RandomProjectionIndex::nearest_of(
    std::size_t i, std::span<const std::size_t> candidates) const {
    if (fallback_) {
        const auto row = dense_.row(i);
        double best = std::numeric_limits<double>::infinity();
        std::size_t nearest = candidates.front();
        for (const std::size_t candidate : candidates) {
            if (row[candidate] < best) {
                best = row[candidate];
                nearest = candidate;
            }
        }
        return nearest;
    }
    return GradientIndex::nearest_of(i, candidates);
}

void RandomProjectionIndex::distances_from(std::size_t i,
                                           std::span<double> out) const {
    if (fallback_) {
        const auto row = dense_.row(i);
        std::copy(row.begin(), row.end(), out.begin());
        return;
    }
    GradientIndex::distances_from(i, out);
}

double RandomProjectionIndex::kth_distance(std::size_t i,
                                           std::size_t k) const {
    if (fallback_ || metric_ != Metric::kEuclidean)
        return GradientIndex::kth_distance(i, k);
    // Expand outward from i in norm order, keeping the k+1 smallest
    // distances seen in a max-heap.  Once the heap is full, a candidate
    // whose norm-difference lower bound exceeds the heap top (with FP
    // slack) cannot enter the k+1 smallest -- and in norm order neither
    // can anything beyond it on that side.  The result is the exact k-th
    // order statistic of the full row: order statistics are values, so
    // this matches the materialize-and-select default bit for bit.
    const std::size_t rank = static_cast<std::size_t>(
        std::find(norm_order_.begin(), norm_order_.end(), i) -
        norm_order_.begin());
    std::vector<double> heap;  // max-heap of the k+1 smallest so far
    heap.reserve(k + 2);
    const auto offer = [&](double d) {
        if (heap.size() <= k) {
            heap.push_back(d);
            std::push_heap(heap.begin(), heap.end());
        } else if (d < heap.front()) {
            std::pop_heap(heap.begin(), heap.end());
            heap.back() = d;
            std::push_heap(heap.begin(), heap.end());
        }
    };
    const auto bound_allows = [&](double norm_gap) {
        if (heap.size() <= k) return true;
        return norm_gap <= heap.front() * (1.0 + kBandRelSlack) +
                               kBandAbsSlack;
    };
    offer(0.0);  // self-distance, always part of the row
    std::size_t left = rank;        // next unvisited on the low side + 1
    std::size_t right = rank + 1;   // next unvisited on the high side
    bool left_open = left > 0;
    bool right_open = right < n_;
    while (left_open || right_open) {
        const double left_gap =
            left_open ? norms_[i] - norms_[norm_order_[left - 1]]
                      : std::numeric_limits<double>::infinity();
        const double right_gap =
            right_open ? norms_[norm_order_[right]] - norms_[i]
                       : std::numeric_limits<double>::infinity();
        if (left_gap <= right_gap) {
            if (!bound_allows(left_gap)) {
                left_open = false;
                continue;
            }
            offer(distance(i, norm_order_[left - 1]));
            --left;
            left_open = left > 0;
        } else {
            if (!bound_allows(right_gap)) {
                right_open = false;
                continue;
            }
            offer(distance(i, norm_order_[right]));
            ++right;
            right_open = right < n_;
        }
    }
    return heap.front();
}

std::size_t RandomProjectionIndex::storage_bytes() const noexcept {
    if (fallback_)
        return (dense_.size() * dense_.size() + dense_.norms().size()) *
               sizeof(double);
    return n_ * sketch_dims_ * sizeof(float) + norms_.size() * sizeof(double) +
           norm_order_.size() * sizeof(std::size_t) +
           projection_.rows.size() * sizeof(float);
}

bool RandomProjectionIndex::update(std::span<const std::vector<float>> points,
                                   std::span<const std::uint8_t> moved,
                                   support::ThreadPool& pool) {
    if (fallback_ || n_ == 0) return false;
    if (points.size() != n_ || moved.size() != n_) return false;
    if (points[0].size() != projection_.in_dim) return false;
    support::parallel_for(
        0, n_,
        [&](std::size_t i) {
            if (moved[i] == 0) return;
            support::gemv(projection_.rows, projection_.out_dim,
                          projection_.in_dim, points[i], {}, sketches_[i]);
            norms_[i] = sketch_norm(sketches_[i]);
        },
        pool);
    sort_by_norm();
    return true;
}

// --- SampledIndex ----------------------------------------------------------

SampledIndex::SampledIndex(std::span<const std::vector<float>> points,
                           const IndexParams& params,
                           support::ThreadPool& pool)
    : metric_(params.metric), n_(points.size()) {
    if (n_ == 0) return;
    if (n_ <= std::max<std::size_t>(params.pivots, 1)) {
        // Below the break-even (see class comment): the dense matrix is
        // cheaper than any n x m profile table, and exact.
        dense_ = DistanceMatrix(metric_, points, pool);
        return;
    }
    pivots_ = std::max<std::size_t>(params.pivots, 1);
    auto rng = support::Rng::fork(params.seed, /*stream=*/0x51A4);
    pivot_ids_ = rng.sample_indices(n_, pivots_);

    // Owned pivot copies: signatures are *defined* as exact distances to
    // these copies, which is what keeps incremental update() consistent --
    // a pivot whose gradient drifts below the refresh threshold keeps its
    // old copy, and every signature stays exact against it.
    pivot_points_.reserve(pivots_);
    for (const std::size_t id : pivot_ids_)
        pivot_points_.emplace_back(points[id].begin(), points[id].end());

    signatures_.resize(n_ * pivots_);
    support::parallel_for(
        0, n_,
        [&](std::size_t i) {
            double* row = signatures_.data() + i * pivots_;
            for (std::size_t p = 0; p < pivots_; ++p)
                row[p] = cluster::distance(metric_, points[i],
                                           pivot_points_[p]);
        },
        pool);
}

void SampledIndex::distances_from(std::size_t i,
                                  std::span<double> out) const {
    if (pivots_ == 0 && n_ > 0) {
        const auto row = dense_.row(i);
        std::copy(row.begin(), row.end(), out.begin());
        return;
    }
    GradientIndex::distances_from(i, out);
}

bool SampledIndex::update(std::span<const std::vector<float>> points,
                          std::span<const std::uint8_t> moved,
                          support::ThreadPool& pool) {
    if (pivots_ == 0) return false;
    if (points.size() != n_ || moved.size() != n_) return false;
    // Refresh the copies of moved pivots first: their column changes for
    // *every* row (the signature invariant is "exact distance to the
    // stored copy"), not just for moved points.
    std::vector<std::size_t> moved_pivots;
    for (std::size_t p = 0; p < pivots_; ++p) {
        if (moved[pivot_ids_[p]] != 0) {
            pivot_points_[p].assign(points[pivot_ids_[p]].begin(),
                                    points[pivot_ids_[p]].end());
            moved_pivots.push_back(p);
        }
    }
    support::parallel_for(
        0, n_,
        [&](std::size_t i) {
            double* row = signatures_.data() + i * pivots_;
            if (moved[i] != 0) {
                // Moved point: its whole profile is stale.
                for (std::size_t p = 0; p < pivots_; ++p)
                    row[p] = cluster::distance(metric_, points[i],
                                               pivot_points_[p]);
                return;
            }
            // Unmoved point: only the moved pivots' coordinates changed.
            for (const std::size_t p : moved_pivots)
                row[p] = cluster::distance(metric_, points[i],
                                           pivot_points_[p]);
        },
        pool);
    return true;
}

double SampledIndex::distance(std::size_t i, std::size_t j) const {
    if (pivots_ == 0) return dense_.at(i, j);
    if (i == j) return 0.0;
    const double* a = signatures_.data() + i * pivots_;
    const double* b = signatures_.data() + j * pivots_;
    double sum = 0.0;
    double top1 = 0.0;
    double top2 = 0.0;
    for (std::size_t p = 0; p < pivots_; ++p) {
        const double diff = a[p] - b[p];
        const double sq = diff * diff;
        sum += sq;
        if (sq > top1) {
            top2 = top1;
            top1 = sq;
        } else if (sq > top2) {
            top2 = sq;
        }
    }
    // Trimmed RMS: each profile coordinate obeys |d(i,p) - d(j,p)| <=
    // d(i,j), but most compress the true distance heavily while a pivot's
    // *own* coordinate (s_p[p] == 0) does not -- so points that are pivots
    // would read as outliers at the scale suggest_eps calibrates from
    // everyone else.  Dropping the two largest coordinates (i and j can
    // each be a pivot) removes that artifact; with far-group pairs many
    // coordinates are large, so the contrast survives the trim.
    std::size_t kept = pivots_;
    if (pivots_ > 4) {
        sum -= top1 + top2;
        kept -= 2;
    }
    return std::sqrt(std::max(sum, 0.0) / static_cast<double>(kept));
}

// --- IndexRegistry ---------------------------------------------------------

namespace {

void register_builtin_indexes(IndexRegistry& registry) {
    registry.add("exact",
                 [](std::span<const std::vector<float>> points,
                    const IndexParams& params, support::ThreadPool& pool)
                     -> std::unique_ptr<GradientIndex> {
                     return std::make_unique<ExactIndex>(params.metric,
                                                         points, pool);
                 });
    registry.add("lazy",
                 [](std::span<const std::vector<float>> points,
                    const IndexParams& params, support::ThreadPool&)
                     -> std::unique_ptr<GradientIndex> {
                     return std::make_unique<LazyIndex>(params.metric,
                                                        points);
                 });
    registry.add("random_projection",
                 [](std::span<const std::vector<float>> points,
                    const IndexParams& params, support::ThreadPool& pool)
                     -> std::unique_ptr<GradientIndex> {
                     return std::make_unique<RandomProjectionIndex>(
                         points, params, pool);
                 });
    registry.add("sampled",
                 [](std::span<const std::vector<float>> points,
                    const IndexParams& params, support::ThreadPool& pool)
                     -> std::unique_ptr<GradientIndex> {
                     return std::make_unique<SampledIndex>(points, params,
                                                           pool);
                 });
}

}  // namespace

std::unique_ptr<GradientIndex> IndexRegistry::build(
    std::string_view name, std::span<const std::vector<float>> points,
    const IndexParams& params, support::ThreadPool& pool) const {
    telemetry::Span span(telemetry::labels::index_build());
    std::unique_ptr<GradientIndex> index = find(name)(points, params, pool);
    span.close();
    telemetry::counter_max(telemetry::labels::index_bytes(),
                           index->storage_bytes());
    return index;
}

IndexRegistry& IndexRegistry::global() {
    static IndexRegistry* registry = [] {
        auto* r = new IndexRegistry;
        register_builtin_indexes(*r);
        return r;
    }();
    return *registry;
}

}  // namespace fairbfl::cluster
