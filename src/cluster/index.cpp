#include "cluster/index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace fairbfl::cluster {

// --- GradientIndex defaults ------------------------------------------------
// Generic fallbacks in terms of distance(); matrix-backed indexes override
// with row scans over their own storage.

std::vector<std::size_t> GradientIndex::neighbors_within(std::size_t i,
                                                         double eps) const {
    std::vector<std::size_t> neighbors;
    const std::size_t n = size();
    for (std::size_t j = 0; j < n; ++j) {
        if (distance(i, j) <= eps) neighbors.push_back(j);
    }
    return neighbors;
}

std::size_t GradientIndex::nearest_of(
    std::size_t i, std::span<const std::size_t> candidates) const {
    double best = std::numeric_limits<double>::infinity();
    std::size_t nearest = candidates.front();
    for (const std::size_t candidate : candidates) {
        const double d = distance(i, candidate);
        if (d < best) {
            best = d;
            nearest = candidate;
        }
    }
    return nearest;
}

void GradientIndex::distances_from(std::size_t i,
                                   std::span<double> out) const {
    const std::size_t n = size();
    for (std::size_t j = 0; j < n; ++j) out[j] = distance(i, j);
}

// --- MatrixBackedIndex -----------------------------------------------------

std::vector<std::size_t> MatrixBackedIndex::neighbors_within(
    std::size_t i, double eps) const {
    std::vector<std::size_t> neighbors;
    const auto row = matrix_.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
        if (row[j] <= eps) neighbors.push_back(j);
    }
    return neighbors;
}

std::size_t MatrixBackedIndex::nearest_of(
    std::size_t i, std::span<const std::size_t> candidates) const {
    const auto row = matrix_.row(i);
    double best = std::numeric_limits<double>::infinity();
    std::size_t nearest = candidates.front();
    for (const std::size_t candidate : candidates) {
        if (row[candidate] < best) {
            best = row[candidate];
            nearest = candidate;
        }
    }
    return nearest;
}

void MatrixBackedIndex::distances_from(std::size_t i,
                                       std::span<double> out) const {
    const auto row = matrix_.row(i);
    std::copy(row.begin(), row.end(), out.begin());
}

// --- RandomProjectionIndex -------------------------------------------------

RandomProjectionIndex::RandomProjectionIndex(
    std::span<const std::vector<float>> points, const IndexParams& params,
    support::ThreadPool& pool) {
    if (points.empty()) return;
    const std::size_t dim = points[0].size();
    const std::size_t k = std::max<std::size_t>(params.projection_dims, 1);
    if (dim <= k || points.size() <= 2 * k) {
        // Below the break-even (see class comment) the sketches are the
        // originals: exact distances, cheaper than projecting.  The
        // backend keeps its approximate contract (exact() stays false) --
        // consumers must not special-case this.
        sketch_dims_ = dim;
        matrix_ = DistanceMatrix(params.metric, points, pool);
        return;
    }
    sketch_dims_ = k;
    const support::ProjectionMatrix projection =
        support::gaussian_projection(dim, k, params.seed);
    const std::vector<std::vector<float>> sketches =
        support::project_rows(projection, points, pool);
    matrix_ = DistanceMatrix(params.metric, sketches, pool);
}

// --- SampledIndex ----------------------------------------------------------

SampledIndex::SampledIndex(std::span<const std::vector<float>> points,
                           const IndexParams& params,
                           support::ThreadPool& pool)
    : metric_(params.metric), n_(points.size()) {
    if (n_ == 0) return;
    if (n_ <= std::max<std::size_t>(params.pivots, 1)) {
        // Below the break-even (see class comment): the dense matrix is
        // cheaper than any n x m profile table, and exact.
        dense_ = DistanceMatrix(metric_, points, pool);
        return;
    }
    pivots_ = std::max<std::size_t>(params.pivots, 1);
    auto rng = support::Rng::fork(params.seed, /*stream=*/0x51A4);
    const std::vector<std::size_t> pivot_ids =
        rng.sample_indices(n_, pivots_);

    signatures_.resize(n_ * pivots_);
    support::parallel_for(
        0, n_,
        [&](std::size_t i) {
            double* row = signatures_.data() + i * pivots_;
            for (std::size_t p = 0; p < pivots_; ++p)
                row[p] = cluster::distance(metric_, points[i],
                                           points[pivot_ids[p]]);
        },
        pool);
}

double SampledIndex::distance(std::size_t i, std::size_t j) const {
    if (pivots_ == 0) return dense_.at(i, j);
    if (i == j) return 0.0;
    const double* a = signatures_.data() + i * pivots_;
    const double* b = signatures_.data() + j * pivots_;
    double sum = 0.0;
    double top1 = 0.0;
    double top2 = 0.0;
    for (std::size_t p = 0; p < pivots_; ++p) {
        const double diff = a[p] - b[p];
        const double sq = diff * diff;
        sum += sq;
        if (sq > top1) {
            top2 = top1;
            top1 = sq;
        } else if (sq > top2) {
            top2 = sq;
        }
    }
    // Trimmed RMS: each profile coordinate obeys |d(i,p) - d(j,p)| <=
    // d(i,j), but most compress the true distance heavily while a pivot's
    // *own* coordinate (s_p[p] == 0) does not -- so points that are pivots
    // would read as outliers at the scale suggest_eps calibrates from
    // everyone else.  Dropping the two largest coordinates (i and j can
    // each be a pivot) removes that artifact; with far-group pairs many
    // coordinates are large, so the contrast survives the trim.
    std::size_t kept = pivots_;
    if (pivots_ > 4) {
        sum -= top1 + top2;
        kept -= 2;
    }
    return std::sqrt(std::max(sum, 0.0) / static_cast<double>(kept));
}

// --- IndexRegistry ---------------------------------------------------------

namespace {

void register_builtin_indexes(IndexRegistry& registry) {
    registry.add("exact",
                 [](std::span<const std::vector<float>> points,
                    const IndexParams& params, support::ThreadPool& pool)
                     -> std::unique_ptr<GradientIndex> {
                     return std::make_unique<ExactIndex>(params.metric,
                                                         points, pool);
                 });
    registry.add("lazy",
                 [](std::span<const std::vector<float>> points,
                    const IndexParams& params, support::ThreadPool&)
                     -> std::unique_ptr<GradientIndex> {
                     return std::make_unique<LazyIndex>(params.metric,
                                                        points);
                 });
    registry.add("random_projection",
                 [](std::span<const std::vector<float>> points,
                    const IndexParams& params, support::ThreadPool& pool)
                     -> std::unique_ptr<GradientIndex> {
                     return std::make_unique<RandomProjectionIndex>(
                         points, params, pool);
                 });
    registry.add("sampled",
                 [](std::span<const std::vector<float>> points,
                    const IndexParams& params, support::ThreadPool& pool)
                     -> std::unique_ptr<GradientIndex> {
                     return std::make_unique<SampledIndex>(points, params,
                                                           pool);
                 });
}

}  // namespace

std::unique_ptr<GradientIndex> IndexRegistry::build(
    std::string_view name, std::span<const std::vector<float>> points,
    const IndexParams& params, support::ThreadPool& pool) const {
    telemetry::Span span(telemetry::labels::index_build());
    std::unique_ptr<GradientIndex> index = find(name)(points, params, pool);
    span.close();
    telemetry::counter_max(telemetry::labels::index_bytes(),
                           index->storage_bytes());
    return index;
}

IndexRegistry& IndexRegistry::global() {
    static IndexRegistry* registry = [] {
        auto* r = new IndexRegistry;
        register_builtin_indexes(*r);
        return r;
    }();
    return *registry;
}

}  // namespace fairbfl::cluster
