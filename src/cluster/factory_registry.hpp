#pragma once
// Shared string-keyed factory-table machinery for the cluster layer's
// registries (IndexRegistry, ClusteringRegistry) -- the SystemRegistry
// pattern, written once: thread-safe additive registration, sorted name
// listing, and unknown-key errors that enumerate the known names.

#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "support/cli.hpp"
#include "support/sync.hpp"

namespace fairbfl::cluster {

/// CRTP-free registry base: derived classes add their typed build/make
/// entry point on top of find().  `kind` names the registry in error
/// messages ("index backend", "clustering algorithm").
template <typename FactoryT>
class FactoryRegistry {
public:
    using Factory = FactoryT;

    explicit FactoryRegistry(const char* kind) noexcept : kind_(kind) {}

    /// Registers a factory.  Throws std::invalid_argument when `name` is
    /// already taken, unless `replace` is set.
    void add(std::string name, Factory factory, bool replace = false)
        EXCLUDES(mutex_) {
        support::MutexLock lock(mutex_);
        if (!replace && factories_.contains(name)) {
            throw std::invalid_argument(std::string(kind_) + " '" + name +
                                        "' is already registered");
        }
        factories_[std::move(name)] = std::move(factory);
    }

    [[nodiscard]] bool contains(std::string_view name) const
        EXCLUDES(mutex_) {
        support::MutexLock lock(mutex_);
        return factories_.find(name) != factories_.end();
    }

    /// Registered names, sorted.
    [[nodiscard]] std::vector<std::string> names() const EXCLUDES(mutex_) {
        support::MutexLock lock(mutex_);
        std::vector<std::string> out;
        out.reserve(factories_.size());
        for (const auto& [name, _] : factories_) out.push_back(name);
        return out;
    }

protected:
    /// The factory registered under `name`.  Throws std::out_of_range
    /// listing the known names when it is not registered.
    [[nodiscard]] Factory find(std::string_view name) const
        EXCLUDES(mutex_) {
        support::MutexLock lock(mutex_);
        const auto it = factories_.find(name);
        if (it == factories_.end()) {
            std::vector<std::string> known;
            known.reserve(factories_.size());
            for (const auto& [key, _] : factories_) known.push_back(key);
            throw std::out_of_range("unknown " + std::string(kind_) + " '" +
                                    std::string(name) + "' (known: " +
                                    support::join_names(known) + ")");
        }
        return it->second;
    }

private:
    const char* kind_;
    mutable support::Mutex mutex_;
    std::map<std::string, Factory, std::less<>> factories_
        GUARDED_BY(mutex_);
};

}  // namespace fairbfl::cluster
