#include "cluster/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/vecmath.hpp"

namespace fairbfl::cluster {

ClusterResult KMeans::cluster(
    std::span<const std::vector<float>> points) const {
    return cluster_impl(points, nullptr);
}

ClusterResult KMeans::cluster_with(
    const GradientIndex& index,
    std::span<const std::vector<float>> points) const {
    if (index.metric() != params_.metric || index.size() != points.size())
        return cluster_impl(points, nullptr);
    return cluster_impl(points, &index);
}

ClusterResult KMeans::cluster_impl(
    std::span<const std::vector<float>> points,
    const GradientIndex* index) const {
    ClusterResult result;
    const std::size_t n = points.size();
    if (n == 0) return result;
    const std::size_t k = std::min(params_.k, n);
    const std::size_t dim = points[0].size();

    // Spherical variant for the cosine metric: normalize copies.
    std::vector<std::vector<float>> data(points.begin(), points.end());
    if (params_.metric == Metric::kCosine) {
        for (auto& p : data) {
            const auto norm = static_cast<float>(support::norm2(p));
            if (norm > 0.0F) support::scale(p, 1.0F / norm);
        }
    }

    auto rng = support::Rng::fork(params_.seed, /*stream=*/0x4B4D);

    // k-means++ seeding.  Every candidate centroid is a data point here,
    // so a prebuilt index answers the seed distances by lookup (a cosine
    // index is built on the unnormalized originals, whose cosine
    // distances equal the normalized copies').
    std::vector<std::vector<float>> centroids;
    centroids.reserve(k);
    std::size_t last_seed = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    centroids.push_back(data[last_seed]);
    std::vector<double> min_dist2(n, std::numeric_limits<double>::infinity());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double d =
                index ? index->distance(i, last_seed)
                      : distance(params_.metric, data[i], centroids.back());
            min_dist2[i] = std::min(min_dist2[i], d * d);
            total += min_dist2[i];
        }
        if (total <= 0.0) {
            // All points coincide with the chosen centroids; duplicate one.
            last_seed = 0;
            centroids.push_back(data[0]);
            continue;
        }
        double pick = rng.uniform() * total;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            pick -= min_dist2[i];
            if (pick <= 0.0) {
                chosen = i;
                break;
            }
        }
        last_seed = chosen;
        centroids.push_back(data[chosen]);
    }

    // Lloyd iterations.
    std::vector<int> labels(n, 0);
    for (std::size_t iter = 0; iter < params_.max_iterations; ++iter) {
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::infinity();
            int best_c = 0;
            for (std::size_t c = 0; c < centroids.size(); ++c) {
                const double d = distance(params_.metric, data[i], centroids[c]);
                if (d < best) {
                    best = d;
                    best_c = static_cast<int>(c);
                }
            }
            if (labels[i] != best_c) {
                labels[i] = best_c;
                changed = true;
            }
        }
        if (!changed && iter > 0) break;

        // Recompute centroids (empty clusters keep their previous centroid).
        std::vector<std::vector<float>> sums(
            centroids.size(), std::vector<float>(dim, 0.0F));
        std::vector<std::size_t> counts(centroids.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            const auto c = static_cast<std::size_t>(labels[i]);
            support::axpy(1.0F, data[i], sums[c]);
            ++counts[c];
        }
        for (std::size_t c = 0; c < centroids.size(); ++c) {
            if (counts[c] == 0) continue;
            support::scale(sums[c], 1.0F / static_cast<float>(counts[c]));
            if (params_.metric == Metric::kCosine) {
                const auto norm = static_cast<float>(support::norm2(sums[c]));
                if (norm > 0.0F) support::scale(sums[c], 1.0F / norm);
            }
            centroids[c] = sums[c];
        }
    }

    result.labels = std::move(labels);
    result.num_clusters = static_cast<int>(centroids.size());
    return result;
}

}  // namespace fairbfl::cluster
