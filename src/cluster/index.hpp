#pragma once
// GradientIndex: the pluggable neighborhood/distance API of Algorithm 2.
//
// The paper parameterizes contribution identification on "any suitable
// clustering algorithm"; this header parameterizes it on the *geometry
// backend* as well.  Every consumer of pairwise gradient distances --
// suggest_eps, the DBSCAN neighbourhood scan, k-means++ seeding, the
// nearest-cluster fallback -- queries this interface instead of reading a
// dense cluster::DistanceMatrix, so exact and approximate backends are
// interchangeable per round:
//
//   * "exact"              -- wraps DistanceMatrix; O(n^2 d) build,
//                             O(n^2) doubles.  Bit-for-bit identical to the
//                             dense-matrix pipeline it replaced.
//   * "lazy"               -- no build at all; every query computes the
//                             exact metric distance from the borrowed
//                             points, O(d) each.  Right when the algorithm
//                             touches O(n) distances (k-means++ seeding),
//                             wasteful for dense O(n^2) scans.
//   * "random_projection"  -- projects the d-dim gradients to k dims once
//                             (O(n d k), support/projection.hpp), then runs
//                             exact O(n^2 k) queries in sketch space.  The
//                             LSH/random-projection direction of ROADMAP's
//                             cluster-stage item.
//   * "sampled"            -- scores every point against m sampled pivot
//                             gradients and measures dissimilarity between
//                             pivot-distance profiles; O(n m d) build and
//                             O(n m) memory, never materializing an
//                             (n+1)^2 matrix (ROADMAP's theta/matrix-memory
//                             item).
//
// Index distances are comparison-only by contract (eps thresholds,
// argmins).  Anything that feeds rewards or training -- e.g. the theta
// scores -- must keep using the exact kernels; consumers may reuse index
// entries for such paths only when exact() is true.
//
// Backends register in the string-keyed IndexRegistry (the SystemRegistry
// pattern), so a bench or adopter plugs a new neighborhood structure in at
// startup and selects it by key (`fairbfl_sim --index=...`).

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/distance.hpp"
#include "cluster/factory_registry.hpp"
#include "support/parallel.hpp"
#include "support/projection.hpp"

namespace fairbfl::cluster {

/// Tuning knobs shared by the built-in backends.  `metric` is the geometry
/// the index answers queries in; Algorithm 2 derives it from the clustering
/// algorithm's configuration at build time.
struct IndexParams {
    Metric metric = Metric::kCosine;
    /// "random_projection": sketch dimensionality k.  Build is O(n d k);
    /// distortion shrinks as O(sqrt(log n / k)).
    std::size_t projection_dims = 48;
    /// "sampled": pivot count m (clamped to n).  Memory is O(n m).
    std::size_t pivots = 32;
    /// Seed for the projection matrix / pivot sampling.  Affects index
    /// internals only, never the round's Rng streams.
    std::uint64_t seed = 42;
    /// Incremental maintenance (IndexCache): relative L2 drift of a point
    /// between rounds above which update() re-sketches it.  0 re-sketches
    /// every point each round -- bit-identical to a from-scratch rebuild,
    /// the equivalence the incremental tests pin.  Converged federated
    /// gradients drift slowly, so a small threshold skips most of the
    /// O(n d k) re-sketch work late in training.
    double refresh_threshold = 0.02;
};

/// Read-only neighborhood structure over one round's point set (the n
/// client updates plus the provisional global).  Implementations are
/// immutable after construction and safe to query from multiple threads.
/// A backend may borrow the point storage it was built over ("lazy" does);
/// callers keep the points alive for the index's lifetime.
class GradientIndex {
public:
    virtual ~GradientIndex() = default;

    /// Registry key / diagnostic label of the backend.
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;
    [[nodiscard]] virtual std::size_t size() const noexcept = 0;
    [[nodiscard]] virtual Metric metric() const noexcept = 0;

    /// Index distance between points i and j.  Symmetric, zero diagonal.
    /// Approximate backends answer in their own geometry (sketch space,
    /// pivot-profile space); values are mutually comparable within one
    /// index but not across backends.
    /// \param i first point ordinal, in [0, size()).
    /// \param j second point ordinal, in [0, size()).
    [[nodiscard]] virtual double distance(std::size_t i,
                                          std::size_t j) const = 0;

    /// Points j (ascending, self included) with distance(i, j) <= eps --
    /// the DBSCAN neighbourhood query.
    /// \param i   query point ordinal.
    /// \param eps neighbourhood radius, in this index's own geometry.
    [[nodiscard]] virtual std::vector<std::size_t> neighbors_within(
        std::size_t i, double eps) const;

    /// The candidate nearest to i under the index distance; the first
    /// candidate wins ties (callers pass candidates in ascending order to
    /// keep argmin tie-breaks deterministic).  Requires a non-empty
    /// candidate set.
    /// \param i          query point ordinal.
    /// \param candidates point ordinals to rank, ascending for stable
    ///                   tie-breaks; must be non-empty.
    [[nodiscard]] virtual std::size_t nearest_of(
        std::size_t i, std::span<const std::size_t> candidates) const;

    /// Fills out[j] = distance(i, j) for every j (out.size() == size()) --
    /// the row query behind suggest_eps's k-distance sample.
    /// \param i   query point ordinal.
    /// \param out destination row; must hold exactly size() entries.
    virtual void distances_from(std::size_t i, std::span<double> out) const;

    /// The k-th order statistic (0-based, self-distance included) of point
    /// i's full distance row -- suggest_eps's k-distance query.  The
    /// default materializes the row and selects; backends with a cheaper
    /// pruned search override it, and because an order statistic is a
    /// *value* (independent of scan order), any override must return the
    /// bit-identical double.
    /// \param i query point ordinal.
    /// \param k order statistic, in [0, size()).
    [[nodiscard]] virtual double kth_distance(std::size_t i,
                                              std::size_t k) const;

    /// True when update() can maintain this index across rounds instead of
    /// a from-scratch rebuild.  False for the exact backends: rebuilding
    /// them is the bit-pinned behavior the fixed-seed series rely on.
    [[nodiscard]] virtual bool supports_update() const noexcept {
        return false;
    }

    /// Incrementally re-points the index at `points` (same cardinality and
    /// dimensionality as the build set), re-sketching only the positions
    /// flagged in `moved`.  Returns false -- leaving the index unusable for
    /// the new round, caller must rebuild -- when the backend cannot
    /// update (default, or a break-even fallback holding a dense matrix).
    /// With every position flagged the result is bit-identical to a
    /// from-scratch rebuild over `points` (same params/seed).
    /// \param points the new round's point set; same n and d as the build.
    /// \param moved  per-point flags (nonzero = re-sketch), one per point.
    /// \param pool   carries the re-sketch fan-out.
    [[nodiscard]] virtual bool update(
        std::span<const std::vector<float>> points,
        std::span<const std::uint8_t> moved,
        support::ThreadPool& pool = support::ThreadPool::global());

    /// True when distance() is the exact pairwise metric (no projection or
    /// sampling error).  Exactness-sensitive consumers (the theta scores)
    /// may reuse index entries only under this flag.
    [[nodiscard]] virtual bool exact() const noexcept { return false; }

    /// True when the index holds precomputed rows, making distances_from a
    /// copy rather than a recompute.  Consumers with a cheaper batch
    /// kernel of their own (the fused theta path) should read the index
    /// back only when this is set.
    [[nodiscard]] virtual bool precomputed_rows() const noexcept {
        return false;
    }

    /// Bytes of storage this index owns beyond the borrowed points: the
    /// dense matrix, sketches' matrix, or pivot-signature table.  Zero for
    /// backends that precompute nothing ("lazy").  This is the number the
    /// shard tree (fl/sharding.hpp) caps per pass -- the per-round memory
    /// ceiling reported as `index_peak_bytes` in perf artifacts.
    [[nodiscard]] virtual std::size_t storage_bytes() const noexcept {
        return 0;
    }
};

/// Shared implementation for backends whose storage is a dense
/// DistanceMatrix (exact over the originals, or exact over sketches):
/// every query is a row scan in ascending-j order -- the exact access
/// pattern of the pre-index DBSCAN scan / argmin fallback, so labels and
/// tie-breaks are unchanged bit-for-bit given the same matrix.
class MatrixBackedIndex : public GradientIndex {
public:
    [[nodiscard]] std::size_t size() const noexcept override {
        return matrix_.size();
    }
    [[nodiscard]] Metric metric() const noexcept override {
        return matrix_.metric();
    }
    [[nodiscard]] double distance(std::size_t i,
                                  std::size_t j) const override {
        return matrix_.at(i, j);
    }
    [[nodiscard]] std::vector<std::size_t> neighbors_within(
        std::size_t i, double eps) const override;
    [[nodiscard]] std::size_t nearest_of(
        std::size_t i,
        std::span<const std::size_t> candidates) const override;
    void distances_from(std::size_t i, std::span<double> out) const override;
    [[nodiscard]] bool precomputed_rows() const noexcept override {
        return true;
    }
    /// The dense n x n value table plus the cached per-point norms.
    [[nodiscard]] std::size_t storage_bytes() const noexcept override {
        return (matrix_.size() * matrix_.size() + matrix_.norms().size()) *
               sizeof(double);
    }

    [[nodiscard]] const DistanceMatrix& matrix() const noexcept {
        return matrix_;
    }

protected:
    MatrixBackedIndex() = default;
    explicit MatrixBackedIndex(DistanceMatrix matrix) noexcept
        : matrix_(std::move(matrix)) {}

    DistanceMatrix matrix_;
};

/// The dense exact backend: today's DistanceMatrix behind the index API.
class ExactIndex final : public MatrixBackedIndex {
public:
    /// Builds the pairwise matrix over `points` (the O(n^2 d) job, row
    /// fan-out on `pool`).
    /// \param metric geometry of every stored distance.
    /// \param points the round's point set; not borrowed (values copied
    ///               into the matrix during the build).
    /// \param pool   carries the row fan-out; values are identical for
    ///               any pool size.
    ExactIndex(Metric metric, std::span<const std::vector<float>> points,
               support::ThreadPool& pool = support::ThreadPool::global())
        : MatrixBackedIndex(DistanceMatrix(metric, points, pool)) {}
    /// Adopts a prebuilt matrix.
    /// \param matrix dense pairwise distances to serve queries from.
    explicit ExactIndex(DistanceMatrix matrix) noexcept
        : MatrixBackedIndex(std::move(matrix)) {}

    [[nodiscard]] std::string_view name() const noexcept override {
        return "exact";
    }
    [[nodiscard]] bool exact() const noexcept override { return true; }
};

/// Zero-build exact backend: borrows the point storage and computes the
/// metric distance on every query (O(d) each, nothing precomputed).  The
/// right trade when the clustering algorithm touches O(n) distances --
/// k-means++ seeding reads one column per seed -- where any precomputed
/// structure costs more to build than it ever returns.  A dense DBSCAN
/// scan over this backend degenerates to the full O(n^2 d) recompute;
/// prefer "exact" there.
class LazyIndex final : public GradientIndex {
public:
    /// Borrows `points`; the caller keeps them alive for the index's
    /// lifetime.
    /// \param metric geometry every query computes in.
    /// \param points the round's point set, borrowed.
    LazyIndex(Metric metric,
              std::span<const std::vector<float>> points) noexcept
        : metric_(metric), points_(points) {}

    [[nodiscard]] std::string_view name() const noexcept override {
        return "lazy";
    }
    [[nodiscard]] std::size_t size() const noexcept override {
        return points_.size();
    }
    [[nodiscard]] Metric metric() const noexcept override { return metric_; }
    [[nodiscard]] double distance(std::size_t i,
                                  std::size_t j) const override {
        if (i == j) return 0.0;
        return cluster::distance(metric_, points_[i], points_[j]);
    }
    [[nodiscard]] bool exact() const noexcept override { return true; }

private:
    Metric metric_ = Metric::kCosine;
    std::span<const std::vector<float>> points_;  ///< borrowed
};

/// Johnson-Lindenstrauss backend: one seeded Gaussian projection to
/// params.projection_dims, then a dense exact matrix over the sketches.
/// Build O(n d k) + O(n^2 k) beats the exact O(n^2 d) whenever k << d
/// (gradients are d ~ 10^4, k ~ 48).
///
/// Below the cost break-even the sketch is pure loss: when the points are
/// no wider than k the projection cannot reduce anything, and when
/// n <= 2k the dense pairwise build (n^2 d / 2 products) is already
/// cheaper than the projection (n d k products).  In both cases the index
/// is built over the original points -- exact geometry at lower cost than
/// any sketch -- and the index *reports* exact() accordingly, so the
/// theta read-back reuses the dense rows instead of recomputing them.
///
/// Above the break-even the index stores the n x k sketch rows (plus their
/// cached L2 norms) and answers every query on demand in O(k) -- no
/// O(n^2) matrix is ever materialized.  Under the Euclidean metric the
/// norm cache also powers a *banded* neighbourhood query: points are kept
/// sorted by sketch norm, and |  ||a|| - ||b||  | <= ||a - b|| restricts a
/// radius-eps scan (and the pruned k-distance search) to the norm band
/// around the query, breaking the dense O(n^2 k) sweep on separated data.
/// The cached projection matrix makes the index incrementally updatable
/// across rounds (see GradientIndex::update).
class RandomProjectionIndex final : public GradientIndex {
public:
    /// Projects the points to sketches (or, below break-even, builds the
    /// dense exact matrix).
    /// \param points the round's point set; not borrowed after the build.
    /// \param params projection_dims (k), seed, and the query metric.
    /// \param pool   carries the projection fan-out.
    RandomProjectionIndex(
        std::span<const std::vector<float>> points, const IndexParams& params,
        support::ThreadPool& pool = support::ThreadPool::global());

    [[nodiscard]] std::string_view name() const noexcept override {
        return "random_projection";
    }
    [[nodiscard]] std::size_t size() const noexcept override { return n_; }
    [[nodiscard]] Metric metric() const noexcept override { return metric_; }
    /// Sketch-space distance, computed on demand with exactly the kernels
    /// DistanceMatrix would apply to the sketches (exact matrix lookup in
    /// the break-even fallback).
    [[nodiscard]] double distance(std::size_t i,
                                  std::size_t j) const override;
    [[nodiscard]] std::vector<std::size_t> neighbors_within(
        std::size_t i, double eps) const override;
    [[nodiscard]] std::size_t nearest_of(
        std::size_t i,
        std::span<const std::size_t> candidates) const override;
    void distances_from(std::size_t i, std::span<double> out) const override;
    /// Pruned k-distance: expands a norm-ordered band around the query
    /// until the norm-difference lower bound proves the remaining points
    /// cannot enter the k smallest.  Bit-identical to the default's order
    /// statistic (Euclidean sketch mode; delegates otherwise).
    [[nodiscard]] double kth_distance(std::size_t i,
                                      std::size_t k) const override;
    /// True only in the break-even fallback, where the stored matrix holds
    /// the exact pairwise metric over the original points.
    [[nodiscard]] bool exact() const noexcept override { return fallback_; }
    [[nodiscard]] bool precomputed_rows() const noexcept override {
        return fallback_;
    }
    [[nodiscard]] std::size_t storage_bytes() const noexcept override;

    [[nodiscard]] bool supports_update() const noexcept override {
        return !fallback_ && n_ > 0;
    }
    /// Re-projects the moved rows through the cached matrix and refreshes
    /// their norms; O(moved * d k) instead of the full O(n d k) build.
    [[nodiscard]] bool update(
        std::span<const std::vector<float>> points,
        std::span<const std::uint8_t> moved,
        support::ThreadPool& pool =
            support::ThreadPool::global()) override;

    /// Sketch dimensionality actually used (0 when n == 0).
    [[nodiscard]] std::size_t sketch_dims() const noexcept {
        return sketch_dims_;
    }

private:
    /// Re-sorts norm_order_ after the norms changed (build and update).
    void sort_by_norm();
    /// Indices of norm_order_ whose norm lies within [lo, hi].
    [[nodiscard]] std::pair<std::size_t, std::size_t> norm_band(
        double lo, double hi) const;

    Metric metric_ = Metric::kCosine;
    std::size_t n_ = 0;
    std::size_t sketch_dims_ = 0;
    bool fallback_ = false;
    std::vector<std::vector<float>> sketches_;  ///< n x k sketch rows
    std::vector<double> norms_;        ///< sketch L2 norms (band + cosine)
    std::vector<std::size_t> norm_order_;  ///< point ids ascending by norm
    support::ProjectionMatrix projection_;  ///< cached for update()
    DistanceMatrix dense_;             ///< break-even fallback storage
};

/// Pivot-profile backend: m gradients are sampled as pivots, every point
/// gets the m-vector of exact metric distances to them, and the index
/// distance is the trimmed-RMS difference between profiles.  Points close
/// under the true metric have close profiles (each coordinate is
/// 1-Lipschitz in the point by the triangle inequality), so cluster
/// structure survives while memory stays O(n m) -- the backend a
/// million-client shard can afford, where any (n+1)^2 matrix cannot
/// exist.  Queries are O(m) per pair with no precomputed pairwise table.
///
/// When n <= m the profile table (n m distances) costs at least as much
/// to build and store as the dense matrix it is supposed to avoid, so --
/// like RandomProjectionIndex below its break-even -- the index holds the
/// exact matrix instead (pivot_count() reports 0, exact() reports true so
/// the theta read-back reuses the rows): small rounds decide identically
/// to "exact", and the O(n m) cap engages exactly where the matrix would
/// outgrow it.
///
/// The index keeps owned copies of the pivot gradients, which makes the
/// signature table incrementally maintainable across rounds: update()
/// refreshes the columns of moved pivots and the rows of moved points,
/// leaving the signatures always equal to exact distances against the
/// stored pivot copies.
class SampledIndex final : public GradientIndex {
public:
    /// Samples the pivots and fills the signature table.
    /// \param points the round's point set; not borrowed after the build.
    /// \param params pivot count (m), sampling seed, and the metric the
    ///               profiles are measured in.
    /// \param pool   carries the per-point signature fan-out.
    SampledIndex(std::span<const std::vector<float>> points,
                 const IndexParams& params,
                 support::ThreadPool& pool = support::ThreadPool::global());

    [[nodiscard]] std::string_view name() const noexcept override {
        return "sampled";
    }
    [[nodiscard]] std::size_t size() const noexcept override { return n_; }
    [[nodiscard]] Metric metric() const noexcept override { return metric_; }
    /// Trimmed-RMS difference between the two pivot-distance profiles
    /// (exact matrix lookup in the small-n fallback).
    /// \param i first point ordinal.
    /// \param j second point ordinal.
    [[nodiscard]] double distance(std::size_t i, std::size_t j) const override;
    void distances_from(std::size_t i, std::span<double> out) const override;
    /// True only in the small-n fallback, where the stored matrix holds
    /// the exact pairwise metric over the original points.
    [[nodiscard]] bool exact() const noexcept override {
        return pivots_ == 0 && n_ > 0;
    }
    [[nodiscard]] bool precomputed_rows() const noexcept override {
        return pivots_ == 0 && n_ > 0;
    }

    [[nodiscard]] bool supports_update() const noexcept override {
        return pivots_ > 0;
    }
    /// Refreshes moved pivots' columns (their copies changed for everyone)
    /// and moved points' rows; O((moved_pivots * n + moved_points * m) d)
    /// instead of the full O(n m d) build.
    [[nodiscard]] bool update(
        std::span<const std::vector<float>> points,
        std::span<const std::uint8_t> moved,
        support::ThreadPool& pool =
            support::ThreadPool::global()) override;

    /// Pivot count actually in use; 0 in the small-n dense fallback.
    [[nodiscard]] std::size_t pivot_count() const noexcept { return pivots_; }
    /// Bytes held by the index storage: the n x m signature table, or the
    /// dense matrix in the small-n fallback.
    [[nodiscard]] std::size_t storage_bytes() const noexcept override {
        return (signatures_.size() + dense_.size() * dense_.size()) *
               sizeof(double);
    }

private:
    Metric metric_ = Metric::kCosine;
    std::size_t n_ = 0;
    std::size_t pivots_ = 0;
    std::vector<double> signatures_;  ///< n x m row-major pivot distances
    std::vector<std::size_t> pivot_ids_;  ///< sampled point ordinals
    std::vector<std::vector<float>> pivot_points_;  ///< owned pivot copies
    DistanceMatrix dense_;            ///< small-n fallback (n <= m)
};

/// String-keyed backend table, mirroring core::SystemRegistry.  `global()`
/// comes pre-loaded with "exact", "lazy", "random_projection" and
/// "sampled"; registrations are additive and thread-safe.
class IndexRegistry
    : public FactoryRegistry<std::function<std::unique_ptr<GradientIndex>(
          std::span<const std::vector<float>>, const IndexParams&,
          support::ThreadPool&)>> {
public:
    IndexRegistry() : FactoryRegistry("index backend") {}

    /// Builds the backend `name` over `points`.  Throws std::out_of_range
    /// listing the known names when it is not registered.  The backend may
    /// borrow `points` (see GradientIndex); keep them alive.  Every build
    /// is instrumented: a "cluster.index_build" telemetry span plus a
    /// "cluster.index_bytes" max-counter of the result's storage_bytes()
    /// (the source of perf JSON `seconds.index_build` / `index_peak_bytes`).
    /// \param name   registry key of the backend to build.
    /// \param points the round's point set (updates + provisional global).
    /// \param params backend tuning; `metric` selects the geometry.
    /// \param pool   carries whatever fan-out the backend's build does.
    [[nodiscard]] std::unique_ptr<GradientIndex> build(
        std::string_view name, std::span<const std::vector<float>> points,
        const IndexParams& params,
        support::ThreadPool& pool = support::ThreadPool::global()) const;

    /// The process-wide registry, built-ins pre-registered.
    static IndexRegistry& global();
};

}  // namespace fairbfl::cluster
