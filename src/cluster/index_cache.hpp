#pragma once
// Cross-round GradientIndex cache: the incremental-maintenance seam of
// Algorithm 2.
//
// Every round used to rebuild its neighborhood index from scratch even
// though converged federated gradients drift slowly between rounds.  The
// cache keeps the previous round's index per *slot* (one slot per
// Algorithm-2 pass: the flat round, the shard tree's root pass, each
// shard), detects which points actually moved (relative L2 drift against
// the stored point set, IndexParams::refresh_threshold), and asks the
// backend to update() itself -- re-sketching only the movers -- instead
// of rebuilding.
//
// Only backends with supports_update() are ever stored.  The exact and
// lazy backends rebuild every round exactly as before, so the bit-pinned
// fixed-seed series are untouched; with refresh_threshold == 0 the
// updatable backends re-sketch everything and stay bit-identical to a
// rebuild too (the equivalence tests/test_incremental_index.cpp pins).
//
// Thread safety: the shard tree runs its shard passes concurrently on one
// shared cache, so the slot map is mutex-guarded (support/sync.hpp; the
// raw-sync lint forbids std primitives here).  An acquired entry is taken
// *out* of the map -- the O(n d) drift scan and O(moved d k) update run
// outside the lock -- and put back on release.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cluster/index.hpp"
#include "support/sync.hpp"

namespace fairbfl::cluster {

/// Slot-keyed cross-round cache of updatable GradientIndex backends.
class IndexCache {
public:
    /// Returns an index serving `points` under (key, params): the cached
    /// slot index update()d in place when it is compatible (same backend
    /// key, same params, same point-set shape), a fresh registry build
    /// otherwise.  Both paths are instrumented exactly like
    /// IndexRegistry::build ("cluster.index_build" span, index-bytes
    /// counter), so perf artifacts stay comparable; reuses additionally
    /// bump the "cluster.index_reuse" counter.
    /// \param slot   pass ordinal (flat round 0; shard tree: root and one
    ///               per shard) -- concurrent passes must use distinct
    ///               slots.
    /// \param key    IndexRegistry backend key.
    /// \param points the round's point set (updates + provisional global).
    /// \param params backend tuning; refresh_threshold drives the drift
    ///               detection.
    /// \param pool   carries build/update fan-out.
    [[nodiscard]] std::unique_ptr<GradientIndex> acquire(
        std::size_t slot, std::string_view key,
        std::span<const std::vector<float>> points, const IndexParams& params,
        support::ThreadPool& pool = support::ThreadPool::global());

    /// Stores the index (and the point set it reflects) for next round's
    /// acquire.  Indexes that cannot update() are dropped -- rebuilding
    /// them is the pinned behavior.  `points` is consumed; pass the
    /// round's point vector by move.
    void release(std::size_t slot, std::string_view key,
                 std::vector<std::vector<float>> points,
                 const IndexParams& params,
                 std::unique_ptr<GradientIndex> index);

private:
    struct Entry {
        std::string key;
        IndexParams params;
        std::vector<std::vector<float>> points;  ///< set the index reflects
        std::unique_ptr<GradientIndex> index;
    };

    support::Mutex mutex_;
    std::unordered_map<std::size_t, Entry> slots_ GUARDED_BY(mutex_);
};

}  // namespace fairbfl::cluster
