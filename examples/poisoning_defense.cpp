// Poisoning defense: malicious clients forge gradients every round; the
// contribution-based incentive mechanism (Algorithm 2 + DBSCAN) flags and
// discards them.  Prints a per-round report in the style of the paper's
// Table 2, then compares final accuracy with and without the defense.
//
//   ./examples/poisoning_defense [--rounds=10] [--attackers=3] [--iid]

#include <cstdio>
#include <string>

#include "core/system.hpp"
#include "support/cli.hpp"

namespace core = fairbfl::core;
namespace ml = fairbfl::ml;
namespace inc = fairbfl::incentive;

namespace {

std::string ids_to_string(const std::vector<fairbfl::fl::NodeId>& ids) {
    std::string out = "[";
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i) out += ", ";
        out += std::to_string(ids[i]);
    }
    return out + "]";
}

core::FairBflConfig attack_config(std::size_t rounds, std::size_t attackers,
                                  bool discard) {
    core::FairBflConfig config;
    config.fl.client_ratio = 1.0;  // all 10 clients, as in Table 2
    config.fl.rounds = rounds;
    config.fl.sgd.learning_rate = 0.05;
    config.fl.sgd.epochs = 5;
    config.fl.sgd.batch_size = 10;
    config.fl.seed = 42;
    config.attack.kind = core::AttackKind::kSignFlip;
    config.attack.magnitude = 3.0;
    config.attack.min_attackers = 1;
    config.attack.max_attackers = attackers;
    config.incentive.strategy = discard
                                    ? inc::LowContributionStrategy::kDiscard
                                    : inc::LowContributionStrategy::kKeepAll;
    return config;
}

}  // namespace

int main(int argc, char** argv) {
    fairbfl::support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts(
            "poisoning_defense: Table-2-style attack detection demo\n"
            "  --rounds=N     rounds (default 10)\n"
            "  --attackers=N  max attackers/round (default 3)\n"
            "  --iid          use IID partition (default non-IID)");
        return 0;
    }
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 10));
    const auto attackers =
        static_cast<std::size_t>(args.get_int("attackers", 3));
    const bool iid = args.get_flag("iid");
    if (!args.finish("poisoning_defense")) return 1;

    core::EnvironmentConfig env_config;
    env_config.data.samples = 1500;
    env_config.data.seed = 42;
    env_config.partition.scheme = iid ? ml::PartitionScheme::kIid
                                      : ml::PartitionScheme::kLabelShards;
    env_config.partition.num_clients = 10;
    env_config.partition.seed = 42;
    const core::Environment env = core::build_environment(env_config);

    std::printf("distribution: %s, 10 clients, 1-%zu sign-flip attackers "
                "per round\n\n",
                iid ? "IID" : "non-IID", attackers);
    std::printf("%-6s %-22s %-22s %s\n", "round", "attacker index",
                "drop index", "detection rate");

    core::FairBfl defended(*env.model, env.make_clients(), env.test,
                           attack_config(rounds, attackers, true));
    double mean_detection = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
        const auto record = defended.run_round();
        mean_detection += record.detection_rate;
        std::printf("%-6llu %-22s %-22s %.2f%%\n",
                    static_cast<unsigned long long>(record.fl.round),
                    ids_to_string(record.attacker_clients).c_str(),
                    ids_to_string(record.low_contribution_clients).c_str(),
                    100.0 * record.detection_rate);
    }
    std::printf("\naverage detection rate: %.2f%%\n",
                100.0 * mean_detection / static_cast<double>(rounds));

    // Undefended comparison (keep-all aggregation under the same attack),
    // through the registry entry point.
    const core::SystemRun undefended = core::run_system(
        env,
        core::fairbfl_spec(attack_config(rounds, attackers, false),
                           "undefended"));

    // Third option: skip Algorithm 2 entirely and make the combine rule
    // itself robust -- the "trimmed_mean" Aggregator drops the extreme
    // coordinate values the forged gradients live in.
    auto robust_config = attack_config(rounds, attackers, false);
    robust_config.enable_incentive = false;
    robust_config.aggregator = core::make_aggregator("trimmed_mean", 0.2);
    const core::SystemRun robust = core::run_system(
        env, core::fairbfl_spec(robust_config, "trimmed-mean"));

    const double defended_acc =
        env.model->accuracy(defended.weights(), env.test);
    std::printf("final accuracy with discard defense:      %.4f\n",
                defended_acc);
    std::printf("final accuracy without defense:           %.4f\n",
                undefended.final_accuracy);
    std::printf("final accuracy with trimmed-mean combine: %.4f\n",
                robust.final_accuracy);
    return 0;
}
