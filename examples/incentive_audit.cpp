// Incentive audit: replay the reward history that FAIR-BFL wrote into the
// blockchain and reconcile it against the in-memory ledger -- the workflow
// of an adopter's billing/reputation system consuming the chain.
//
// Demonstrates: reward transactions on-chain, Merkle audit paths for
// individual reward transactions, and contribution-weighted payouts
// favouring data-rich clients.
//
//   ./examples/incentive_audit [--rounds=15]

#include <cstdio>

#include "chain/merkle.hpp"
#include "core/system.hpp"
#include "support/cli.hpp"

namespace core = fairbfl::core;
namespace ml = fairbfl::ml;
namespace ch = fairbfl::chain;

int main(int argc, char** argv) {
    fairbfl::support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("incentive_audit: reconcile on-chain rewards vs ledger\n"
                  "  --rounds=N  rounds (default 15)");
        return 0;
    }
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 15));
    if (!args.finish("incentive_audit")) return 1;

    core::EnvironmentConfig env_config;
    env_config.data.samples = 2000;
    env_config.data.seed = 11;
    env_config.partition.scheme = ml::PartitionScheme::kDirichlet;
    env_config.partition.dirichlet_alpha = 0.5;  // unequal shards
    env_config.partition.num_clients = 20;
    env_config.partition.seed = 11;
    const core::Environment env = core::build_environment(env_config);

    core::FairBflConfig config;
    config.fl.client_ratio = 0.5;
    config.fl.rounds = rounds;
    config.fl.sgd.learning_rate = 0.05;
    config.fl.seed = 11;
    config.incentive.reward_base = 10.0;  // 10 tokens per round

    // Build and run through the registry; the System interface exposes the
    // chain and reward ledger this audit consumes.
    const auto system =
        core::SystemRegistry::global().make(env, core::fairbfl_spec(config));
    for (std::size_t r = 0; r < rounds; ++r) (void)system->run_round();

    // --- Replay every reward transaction from the chain.
    const auto& chain = *system->blockchain();
    const auto& reward_ledger = *system->reward_ledger();
    double replayed_total = 0.0;
    std::size_t reward_txs = 0;
    for (std::size_t h = 1; h < chain.height(); ++h) {
        for (const auto& tx : chain.at(h).transactions) {
            if (tx.kind != ch::TxKind::kReward) continue;
            replayed_total += ch::parse_reward_tx(tx).amount;
            ++reward_txs;
        }
    }
    std::printf("blocks: %zu, reward transactions replayed: %zu\n",
                chain.height() - 1, reward_txs);
    std::printf("on-chain reward total: %.3f tokens\n", replayed_total);
    std::printf("ledger reward total:   %.3f tokens (match within "
                "quantization: %s)\n",
                reward_ledger.grand_total(),
                std::abs(replayed_total - reward_ledger.grand_total()) < 0.05
                    ? "yes"
                    : "NO");

    // --- Merkle audit: prove one reward tx is committed by its block.
    const auto& block = chain.at(1);
    std::vector<fairbfl::crypto::Digest> leaves;
    for (const auto& tx : block.transactions) leaves.push_back(tx.id());
    std::size_t reward_index = 0;
    for (std::size_t i = 0; i < block.transactions.size(); ++i)
        if (block.transactions[i].kind == ch::TxKind::kReward) reward_index = i;
    const auto proof = ch::merkle_proof(leaves, reward_index);
    const bool proof_ok =
        ch::merkle_apply(leaves[reward_index], proof) ==
        block.header.merkle_root;
    std::printf("merkle audit path for block 1 reward tx: %s (%zu siblings)\n",
                proof_ok ? "verified" : "FAILED", proof.size());

    // --- Leaderboard.
    std::printf("\nreward leaderboard (top 8):\n");
    std::printf("%-8s %-10s %s\n", "client", "samples", "total reward");
    const auto board = reward_ledger.leaderboard();
    const auto clients = env.make_clients();
    for (std::size_t i = 0; i < board.size() && i < 8; ++i) {
        std::printf("%-8u %-10zu %.3f\n", board[i].first,
                    clients[board[i].first].num_samples(), board[i].second);
    }
    return 0;
}
