// fairbfl_sim: the whole experiment harness behind one CLI.
//
// Runs any of the four systems on a configurable world and prints the
// per-round series as CSV -- the tool an adopter scripts parameter studies
// with.
//
//   ./examples/fairbfl_sim --system=fair --clients=100 --miners=2 \
//       --rounds=30 --eta=0.05 --ratio=0.1 --partition=shards \
//       [--discard] [--attack=signflip --attackers=3] [--encrypt] \
//       [--save-chain=chain.bin] [--csv=out.csv]

#include <cstdio>
#include <fstream>
#include <iostream>

#include "chain/storage.hpp"
#include "core/system.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/simd.hpp"
#include "telemetry/decode.hpp"
#include "telemetry/telemetry.hpp"

using namespace fairbfl;

namespace {

ml::PartitionScheme parse_partition(const std::string& name) {
    if (name == "iid") return ml::PartitionScheme::kIid;
    if (name == "shards") return ml::PartitionScheme::kLabelShards;
    if (name == "dirichlet") return ml::PartitionScheme::kDirichlet;
    std::fprintf(stderr, "unknown partition '%s', using shards\n",
                 name.c_str());
    return ml::PartitionScheme::kLabelShards;
}

core::AttackKind parse_attack(const std::string& name) {
    if (name == "none") return core::AttackKind::kNone;
    if (name == "signflip") return core::AttackKind::kSignFlip;
    if (name == "gaussian") return core::AttackKind::kGaussian;
    if (name == "scale") return core::AttackKind::kScale;
    std::fprintf(stderr, "unknown attack '%s', using none\n", name.c_str());
    return core::AttackKind::kNone;
}

/// Historic CLI aliases for registry keys.
std::string registry_key(const std::string& system) {
    if (system == "fair") return "fairbfl";
    if (system == "vanilla") return "vanilla_bfl";
    return system;
}

}  // namespace

int main(int argc, char** argv) {
    support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts(
            "fairbfl_sim: run one BFL/FL system and print the round series\n"
            "  --system=fair|vanilla|fedavg|fedprox|blockchain (default\n"
            "           fair); any name in SystemRegistry::global() works\n"
            "  --clients=N --miners=N --rounds=N --seed=N\n"
            "  --eta=F --ratio=F --epochs=N --batch=N\n"
            "  --samples=N --dim=N --partition=iid|shards|dirichlet\n"
            "  --model=logistic|mlp --hidden=N\n"
            "  --discard            discard low-contribution clients\n"
            "  --clustering=NAME    Algorithm 2 clustering backend (dbscan|\n"
            "                       kmeans; any ClusteringRegistry key)\n"
            "  --index=NAME         neighborhood index backend (auto|\n"
            "                       exact|lazy|random_projection|sampled;\n"
            "                       any IndexRegistry key; auto defers to\n"
            "                       the clustering algorithm)\n"
            "  --shards=N           hierarchical shard-tree fan-out for\n"
            "                       Algorithm 2 (1 = flat single pass)\n"
            "  --kernels=NAME       vector-kernel table (scalar|simd|auto;\n"
            "                       scalar -- the default -- is bit-pinned,\n"
            "                       simd/auto trade bit-identity for the\n"
            "                       AVX2+FMA kernels; FAIRBFL_KERNELS env\n"
            "                       sets the same switch)\n"
            "  --aggregator=NAME    combine rule (simple|sample_weighted|\n"
            "                       fair|trimmed_mean|median)\n"
            "  --list               print every registered backend and exit\n"
            "  --quorum=F           aggregate once this fraction of the\n"
            "                       round's uploads arrived (1.0 = wait\n"
            "                       for all, the lockstep default)\n"
            "  --deadline-ms=F      virtual-time round deadline (0 = none)\n"
            "  --late=next_round|retroactive   late-gradient policy\n"
            "  --attack=none|signflip|gaussian|scale --attackers=N\n"
            "  --encrypt --keybits=N   sign (and encrypt) uploads\n"
            "  --prox-mu=F --drop=F    (fedprox)\n"
            "  --save-chain=PATH       export the ledger after the run\n"
            "  --csv=PATH              mirror the series to a file\n"
            "  --trace=PATH            dump the run's telemetry event log\n"
            "  --trace-format=binary|text|json   (default binary)");
        return 0;
    }

    if (args.get_flag("list")) {
        const auto print_names = [](const char* title, const auto& names) {
            std::printf("%s:", title);
            for (const auto& name : names) {
                std::printf(" %.*s", static_cast<int>(std::size(name)),
                            std::data(name));
            }
            std::printf("\n");
        };
        print_names("systems", core::SystemRegistry::global().names());
        print_names("clustering", cluster::ClusteringRegistry::global().names());
        print_names("index", cluster::IndexRegistry::global().names());
        print_names("aggregators", core::aggregator_names());
        std::printf("trace formats: binary text json (--trace=PATH "
                    "--trace-format=...)\n");
        return 0;
    }

    const std::string system = args.get_string("system", "fair");
    const auto clients = static_cast<std::size_t>(args.get_int("clients", 100));
    const auto miners = static_cast<std::size_t>(args.get_int("miners", 2));
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 30));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

    core::EnvironmentConfig env_config;
    env_config.data.samples =
        static_cast<std::size_t>(args.get_int("samples", 3000));
    env_config.data.feature_dim =
        static_cast<std::size_t>(args.get_int("dim", 64));
    env_config.data.seed = seed;
    env_config.partition.scheme =
        parse_partition(args.get_string("partition", "shards"));
    env_config.partition.num_clients = clients;
    env_config.partition.seed = seed;
    env_config.model = args.get_string("model", "logistic") == "mlp"
                           ? core::ModelKind::kMlp
                           : core::ModelKind::kLogistic;
    env_config.mlp_hidden =
        static_cast<std::size_t>(args.get_int("hidden", 32));

    fl::FlConfig fl_config;
    fl_config.client_ratio = args.get_double("ratio", 0.1);
    fl_config.rounds = rounds;
    fl_config.sgd.learning_rate = args.get_double("eta", 0.05);
    fl_config.sgd.epochs = static_cast<std::size_t>(args.get_int("epochs", 5));
    fl_config.sgd.batch_size =
        static_cast<std::size_t>(args.get_int("batch", 10));
    fl_config.seed = seed;

    core::AttackConfig attack;
    attack.kind = parse_attack(args.get_string("attack", "none"));
    attack.max_attackers =
        static_cast<std::size_t>(args.get_int("attackers", 3));

    const double quorum = args.get_double("quorum", 1.0);
    const double deadline_ms = args.get_double("deadline-ms", 0.0);
    const std::string late = args.get_string("late", "next_round");
    const bool discard = args.get_flag("discard");
    const std::string clustering = args.get_string("clustering", "dbscan");
    const std::string index = args.get_string("index", "auto");
    const auto shards = static_cast<std::size_t>(args.get_int("shards", 1));
    // Empty default defers to FAIRBFL_KERNELS (resolved on first kernel
    // call); an explicit flag wins over the environment.
    const std::string kernels = args.get_string("kernels", "");
    const std::string aggregator = args.get_string("aggregator", "");
    const bool encrypt = args.get_flag("encrypt");
    const auto key_bits = static_cast<std::size_t>(
        args.get_int("keybits", encrypt ? 384 : 0));
    const double prox_mu = args.get_double("prox-mu", 0.1);
    const double drop = args.get_double("drop", 0.0);
    const std::string save_chain_path = args.get_string("save-chain", "");
    const std::string csv_path = args.get_string("csv", "");
    const std::string trace_path = args.get_string("trace", "");
    const std::string trace_format =
        args.get_string("trace-format", "binary");
    if (!args.finish("fairbfl_sim")) return 1;
    if (!kernels.empty() &&
        !support::simd::set_mode_name(kernels.c_str())) {
        std::fprintf(stderr,
                     "--kernels: unknown table '%s' (known: scalar simd "
                     "auto)\n",
                     kernels.c_str());
        return 1;
    }
    const auto late_policy = core::parse_late_policy(late);
    if (!late_policy) {
        std::fprintf(stderr,
                     "--late: unknown policy '%s' (known: next_round "
                     "retroactive)\n",
                     late.c_str());
        return 1;
    }
    if (quorum <= 0.0 || deadline_ms < 0.0) {
        std::fprintf(stderr,
                     "need --quorum > 0 and --deadline-ms >= 0\n");
        return 1;
    }
    if (trace_format != "binary" && trace_format != "text" &&
        trace_format != "json") {
        std::fprintf(stderr,
                     "--trace-format: unknown format '%s' (known: binary "
                     "text json)\n",
                     trace_format.c_str());
        return 1;
    }

    const core::Environment env = core::build_environment(env_config);

    // One spec covers every system: the CLI name is a registry key, so any
    // scenario registered with SystemRegistry::global() is reachable from
    // this tool without code changes.
    core::SystemSpec spec;
    spec.system = registry_key(system);
    spec.rounds = rounds;
    spec.fl = fl_config;
    spec.delay = core::DelayParams{};

    spec.fair.fl = fl_config;
    spec.fair.miners = miners;
    spec.fair.attack = attack;
    spec.fair.key_bits = key_bits;
    spec.fair.encrypt_gradients = encrypt;
    spec.fair.round.quorum_fraction = quorum;
    spec.fair.round.deadline_ns =
        static_cast<std::uint64_t>(deadline_ms * 1e6);
    spec.fair.round.late_policy = *late_policy;
    if (discard)
        spec.fair.incentive.strategy =
            incentive::LowContributionStrategy::kDiscard;
    // Backends resolve by registry key; fail fast with the known names
    // instead of handing a bad key to the first round.
    if (!cluster::ClusteringRegistry::global().contains(clustering)) {
        std::fprintf(stderr,
                     "--clustering: unknown backend '%s' (known: %s)\n",
                     clustering.c_str(),
                     core::detail::join_names(
                         cluster::ClusteringRegistry::global().names())
                         .c_str());
        return 1;
    }
    if (index != "auto" &&
        !cluster::IndexRegistry::global().contains(index)) {
        std::fprintf(
            stderr, "--index: unknown backend '%s' (known: %s)\n",
            index.c_str(),
            core::detail::join_names(cluster::IndexRegistry::global().names())
                .c_str());
        return 1;
    }
    spec.fair.incentive.clustering = clustering;
    spec.fair.incentive.index = index;
    spec.fair.incentive.sharding.shards = shards;
    if (!aggregator.empty()) {
        if (spec.system != "fairbfl" && spec.system != "fairbfl_discard" &&
            spec.system != "pure_fl") {
            std::fprintf(stderr,
                         "--aggregator: system '%s' has no pluggable combine "
                         "rule; the flag is ignored\n",
                         spec.system.c_str());
        }
        try {
            spec.fair.aggregator = core::make_aggregator(aggregator);
        } catch (const std::invalid_argument& error) {
            std::fprintf(stderr, "%s\n", error.what());
            return 1;
        }
    }

    spec.vanilla.fl = fl_config;
    spec.vanilla.miners = miners;
    spec.vanilla.attack = attack;
    spec.vanilla.key_bits = key_bits;

    spec.fedprox.base = fl_config;
    spec.fedprox.prox_mu = prox_mu;
    spec.fedprox.drop_percent = drop;

    spec.blockchain.workers = clients;
    spec.blockchain.miners = miners;
    spec.blockchain.rounds = rounds;
    spec.blockchain.seed = seed;

    std::unique_ptr<core::System> runner;
    try {
        runner = core::SystemRegistry::global().make(env, spec);
    } catch (const std::out_of_range& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 1;
    }

    support::CsvWriter csv(std::cout);
    if (!csv_path.empty() && !csv.tee_to_file(csv_path))
        std::fprintf(stderr, "warning: cannot write %s\n", csv_path.c_str());
    csv.header({"round", "delay_s", "elapsed_s", "accuracy"});

    // The capture retains every record the round loop emits (all sessions
    // plus ambient streams); it is independent of the systems' per-round
    // harvests, which keep consuming their own sessions as usual.
    if (!trace_path.empty()) telemetry::capture_begin();
    for (std::size_t r = 0; r < spec.rounds; ++r) (void)runner->run_round();
    core::SystemRun run = runner->finalize();
    if (!trace_path.empty()) {
        const telemetry::Dump dump = telemetry::capture_end();
        bool written = false;
        if (trace_format == "binary") {
            written = dump.save(trace_path);
        } else {
            std::ofstream file(trace_path);
            if (file) {
                file << (trace_format == "text" ? telemetry::to_text(dump)
                                                : telemetry::to_json(dump));
                written = file.good();
            }
        }
        if (written) {
            std::fprintf(stderr, "# trace: %zu records -> %s (%s)\n",
                         dump.records.size(), trace_path.c_str(),
                         trace_format.c_str());
        } else {
            std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        }
    }
    const chain::Blockchain* ledger = runner->blockchain();
    for (const auto& point : run.series) {
        csv.row()
            .col(static_cast<std::size_t>(point.round))
            .col(point.delay_seconds)
            .col(point.elapsed_seconds)
            .col(point.accuracy)
            .end();
    }
    std::printf("# %s: avg_delay=%.3fs avg_acc=%.4f final_acc=%.4f\n",
                run.name.c_str(), run.average_delay, run.average_accuracy,
                run.final_accuracy);

    if (!save_chain_path.empty()) {
        if (ledger == nullptr) {
            std::fprintf(stderr,
                         "--save-chain: system '%s' keeps no ledger\n",
                         system.c_str());
        } else if (chain::save_chain(*ledger, save_chain_path)) {
            std::printf("# chain exported to %s (%zu blocks)\n",
                        save_chain_path.c_str(), ledger->height());
        } else {
            std::fprintf(stderr, "cannot write %s\n", save_chain_path.c_str());
        }
    }
    return 0;
}
