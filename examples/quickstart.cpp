// Quickstart: run FAIR-BFL for 20 communication rounds on a synthetic
// non-IID federated dataset, then inspect accuracy, delay, the blockchain,
// and the reward leaderboard.
//
//   ./examples/quickstart [--rounds=20] [--clients=50] [--seed=42]

#include <cstdio>

#include "core/system.hpp"
#include "support/cli.hpp"

namespace core = fairbfl::core;
namespace ml = fairbfl::ml;

int main(int argc, char** argv) {
    fairbfl::support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts(
            "quickstart: minimal FAIR-BFL run\n"
            "  --rounds=N    communication rounds (default 20)\n"
            "  --clients=N   federated clients (default 50)\n"
            "  --seed=N      root seed (default 42)");
        return 0;
    }
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 20));
    const auto clients = static_cast<std::size_t>(args.get_int("clients", 50));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    if (!args.finish("quickstart")) return 1;

    // 1. Build the world: synthetic MNIST-like data, non-IID label shards,
    //    logistic regression (swap in kMlp for a neural model).
    core::EnvironmentConfig env_config;
    env_config.data.samples = 3000;
    env_config.data.seed = seed;
    env_config.partition.scheme = ml::PartitionScheme::kLabelShards;
    env_config.partition.num_clients = clients;
    env_config.partition.seed = seed;
    const core::Environment env = core::build_environment(env_config);

    // 2. Configure FAIR-BFL with the paper's defaults (eta=0.01 scaled up
    //    for the small synthetic problem, E=5, B=10, m=2 miners).
    core::FairBflConfig config;
    config.fl.client_ratio = 0.2;
    config.fl.rounds = rounds;
    config.fl.sgd.learning_rate = 0.05;
    config.fl.sgd.epochs = 5;
    config.fl.sgd.batch_size = 10;
    config.fl.seed = seed;
    config.miners = 2;

    core::FairBfl system(*env.model, env.make_clients(), env.test, config);

    // 3. Run and report per-round progress.
    std::printf("%-6s %-10s %-10s %-8s %s\n", "round", "accuracy", "delay(s)",
                "blocks", "reward_paid");
    double elapsed = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
        const core::BflRoundRecord record = system.run_round();
        elapsed += record.delay.total();
        std::printf("%-6llu %-10.4f %-10.2f %-8zu %.3f\n",
                    static_cast<unsigned long long>(record.fl.round),
                    record.fl.test_accuracy, record.delay.total(),
                    record.chain_height - 1, record.round_reward_total);
    }

    // 4. Inspect the ledger the run produced.
    std::printf("\nchain height: %zu (validates: %s)\n",
                system.blockchain().height(),
                system.blockchain().validate_full_chain() ? "yes" : "NO");
    std::printf("simulated time: %.1f s\n", elapsed);
    std::printf("top contributors by cumulative reward:\n");
    const auto board = system.ledger().leaderboard();
    for (std::size_t i = 0; i < board.size() && i < 5; ++i) {
        std::printf("  client %-4u total reward %.3f\n", board[i].first,
                    board[i].second);
    }

    // 5. The same workload is one registry call -- and so is any other
    //    registered system.  Compare against the pure-FL degradation
    //    (Procedures III and V off) to see what the chain costs.
    const core::SystemRun pure_fl =
        core::run_system(env, core::pure_fl_spec(config));
    std::printf("\nregistered systems:");
    for (const auto& name : core::SystemRegistry::global().names())
        std::printf(" %s", name.c_str());
    std::printf("\npure-FL comparison: avg delay %.2f (FAIR-BFL) vs %.2f "
                "s/round (pure FL) -- the chain's price; final accuracy "
                "%.4f vs %.4f\n",
                rounds > 0 ? elapsed / static_cast<double>(rounds) : 0.0,
                pure_fl.average_delay,
                env.model->accuracy(system.weights(), env.test),
                pure_fl.final_accuracy);
    return 0;
}
