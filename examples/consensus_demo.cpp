// Consensus demo: watch miner replicas fork and reconcile in simulated
// time -- the mechanics behind the paper's "forking is inevitable" critique
// of vanilla BFL, and why FAIR-BFL's tight coupling avoids it.
//
//   ./examples/consensus_demo [--miners=4] [--rounds=12] [--race-prob=0.5]

#include <cstdio>

#include "chain/consensus.hpp"
#include "core/strategies.hpp"
#include "support/cli.hpp"

namespace ch = fairbfl::chain;
namespace core = fairbfl::core;

int main(int argc, char** argv) {
    fairbfl::support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("consensus_demo: replicas forking and reconciling\n"
                  "  --miners=N     replicas (default 4)\n"
                  "  --rounds=N     mining rounds (default 12)\n"
                  "  --race-prob=P  chance of a simultaneous competitor "
                  "(default 0.5)");
        return 0;
    }
    const auto miners = static_cast<std::size_t>(args.get_int("miners", 4));
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 12));
    const double race_prob = args.get_double("race-prob", 0.5);
    if (!args.finish("consensus_demo")) return 1;

    ch::NetworkParams net;
    net.miner_base_latency_s = 0.2;  // slow gossip: wide fork window
    ch::ConsensusSim sim(miners, 0xDE30, ch::NetworkModel(net), 7);
    fairbfl::support::Rng rng(7);

    std::printf("%-6s %-8s %-14s %-12s %s\n", "round", "winner",
                "competitor", "tips(before)", "tips(after gossip)");
    double now = 0.0;
    std::size_t fork_events = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
        const auto winner = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(miners) - 1));
        const ch::Block block = sim.make_child_block(
            winner, {}, r * 10 + 1);
        (void)sim.broadcast(winner, block, now);

        std::string competitor = "-";
        if (rng.bernoulli(race_prob)) {
            // Another miner solves before hearing the winner's block.
            auto rival = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(miners) - 1));
            if (rival == winner) rival = (rival + 1) % miners;
            const ch::Block rival_block = sim.make_child_block(
                rival, {}, r * 10 + 2);
            (void)sim.broadcast(rival, rival_block, now + 0.01);
            competitor = "miner " + std::to_string(rival);
        }

        const std::size_t before = sim.distinct_tips();
        now += 2.0;
        sim.advance_to(now);
        const std::size_t after = sim.distinct_tips();
        if (after > 1) ++fork_events;
        std::printf("%-6zu miner %-2zu %-14s %-12zu %zu%s\n", r, winner,
                    competitor.c_str(), before, after,
                    after > 1 ? "   <- fork!" : "");
    }

    // A final uncontested block resolves any remaining tie.
    const ch::Block closer = sim.make_child_block(0, {}, 9999);
    (void)sim.broadcast(0, closer, now);
    sim.drain();

    std::printf("\nafter settlement: %zu distinct tip(s); all replicas "
                "valid: %s\n",
                sim.distinct_tips(), [&] {
                    for (std::size_t m = 0; m < miners; ++m)
                        if (!sim.replica(m).validate_full_chain()) return "NO";
                    return "yes";
                }());
    std::printf("fork rounds observed: %zu / %zu -- FAIR-BFL's Assumption 1 "
                "(one synchronized competition per round) makes this 0 by "
                "construction.\n",
                fork_events, rounds);
    std::printf("replica 0: height=%zu, orphaned side-branch blocks=%zu, "
                "reorgs=%zu\n",
                sim.replica(0).height(), sim.replica(0).orphaned_blocks(),
                sim.replica(0).reorg_count());

    // The same story, priced: the two ConsensusEngine strategies of
    // core/strategies.hpp charge this fork behaviour in simulated seconds.
    const core::DelayModel delays;
    fairbfl::support::Rng price_rng(7);
    double sync_s = 0.0;
    double async_s = 0.0;
    std::size_t async_forks = 0;
    const auto sync_pow = core::make_consensus("sync_pow");
    const auto async_pow = core::make_consensus("async_pow");
    for (std::size_t r = 0; r < rounds; ++r) {
        sync_s += sync_pow->mine(delays, miners, 1, 4096, price_rng).seconds;
        const auto mined =
            async_pow->mine(delays, miners, 1, 4096, price_rng);
        async_s += mined.seconds;
        async_forks += mined.forks;
    }
    std::printf("\nengine pricing over %zu blocks, m=%zu: sync_pow %.1f s "
                "(0 forks by construction), async_pow %.1f s (%zu forks)\n",
                rounds, miners, sync_s, async_s, async_forks);
    return 0;
}
