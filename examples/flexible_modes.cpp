// Flexibility by design (paper §4.6 / Figure 3): the same pipeline runs as
// full FAIR-BFL, degrades to pure FL (drop Procedures III and V), or to a
// pure blockchain (drop Procedures I and IV) -- "allowing adopters to
// adjust its capabilities following business demands in a dynamic fashion".
//
//   ./examples/flexible_modes [--rounds=10]

#include <cstdio>

#include "core/experiment.hpp"
#include "support/cli.hpp"

namespace core = fairbfl::core;
namespace ml = fairbfl::ml;

int main(int argc, char** argv) {
    fairbfl::support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("flexible_modes: FAIR-BFL vs its two degraded modes\n"
                  "  --rounds=N  rounds per mode (default 10)");
        return 0;
    }
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 10));
    if (!args.finish("flexible_modes")) return 1;

    core::EnvironmentConfig env_config;
    env_config.data.samples = 2000;
    env_config.data.seed = 7;
    env_config.partition.scheme = ml::PartitionScheme::kLabelShards;
    env_config.partition.num_clients = 50;
    env_config.partition.seed = 7;
    const core::Environment env = core::build_environment(env_config);

    core::FairBflConfig base;
    base.fl.client_ratio = 0.2;
    base.fl.rounds = rounds;
    base.fl.sgd.learning_rate = 0.05;
    base.fl.seed = 7;
    base.miners = 2;

    // Mode 1: full FAIR-BFL (all five procedures).
    const auto fair = core::run_fairbfl(env, base, "FAIR-BFL");

    // Mode 2: pure FL -- remove Procedure III (exchange) and V (mining).
    auto fl_only = base;
    fl_only.stage_exchange = false;
    fl_only.stage_mining = false;
    const auto pure_fl = core::run_fairbfl(env, fl_only, "pure-FL");

    // Mode 3: pure blockchain -- remove Procedure I (learning) and IV
    // (global updates); workers just submit payload transactions.
    core::BlockchainBaselineConfig bc;
    bc.workers = 50;
    bc.miners = 2;
    bc.rounds = rounds;
    bc.seed = 7;
    const auto pure_chain = core::run_blockchain(bc);

    std::printf("%-10s %-12s %-14s %s\n", "mode", "avg delay(s)",
                "final accuracy", "learns/ledgers");
    std::printf("%-10s %-12.2f %-14.4f learning + immutable ledger\n",
                fair.name.c_str(), fair.average_delay, fair.final_accuracy);
    std::printf("%-10s %-12.2f %-14.4f learning only (no chain)\n",
                pure_fl.name.c_str(), pure_fl.average_delay,
                pure_fl.final_accuracy);
    std::printf("%-10s %-12.2f %-14s ledger only (no learning)\n",
                pure_chain.name.c_str(), pure_chain.average_delay, "n/a");

    std::printf("\nscaling back functionality changes cost: pure FL saves "
                "%.1f s/round of blockchain overhead;\nFAIR-BFL pays it to "
                "gain immutability, incentives and attack resistance.\n",
                fair.average_delay - pure_fl.average_delay);
    return 0;
}
