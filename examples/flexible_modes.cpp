// Flexibility by design (paper §4.6 / Figure 3): the same pipeline runs as
// full FAIR-BFL, degrades to pure FL (drop Procedures III and V), or to a
// pure blockchain (drop Procedures I and IV) -- "allowing adopters to
// adjust its capabilities following business demands in a dynamic fashion".
//
//   ./examples/flexible_modes [--rounds=10]

#include <array>
#include <cstdio>

#include "core/system.hpp"
#include "support/cli.hpp"

namespace core = fairbfl::core;
namespace ml = fairbfl::ml;

int main(int argc, char** argv) {
    fairbfl::support::CliArgs args(argc, argv);
    if (args.help_requested()) {
        std::puts("flexible_modes: FAIR-BFL vs its two degraded modes\n"
                  "  --rounds=N  rounds per mode (default 10)");
        return 0;
    }
    const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 10));
    if (!args.finish("flexible_modes")) return 1;

    core::EnvironmentConfig env_config;
    env_config.data.samples = 2000;
    env_config.data.seed = 7;
    env_config.partition.scheme = ml::PartitionScheme::kLabelShards;
    env_config.partition.num_clients = 50;
    env_config.partition.seed = 7;
    const core::Environment env = core::build_environment(env_config);

    core::FairBflConfig base;
    base.fl.client_ratio = 0.2;
    base.fl.rounds = rounds;
    base.fl.sgd.learning_rate = 0.05;
    base.fl.seed = 7;
    base.miners = 2;

    // The three modes are three registry entries over the same pipeline:
    // "fairbfl" (all five procedures), "pure_fl" (Procedures III and V
    // off), and "blockchain" (Procedures I and IV off) -- one run_suite
    // call executes them concurrently.
    core::BlockchainBaselineConfig bc;
    bc.workers = 50;
    bc.miners = 2;
    bc.rounds = rounds;
    bc.seed = 7;

    const std::array specs{core::fairbfl_spec(base, "FAIR-BFL"),
                           core::pure_fl_spec(base, "pure-FL"),
                           core::blockchain_spec(bc)};
    const auto runs = core::run_suite(env, specs);
    const auto& fair = runs[0];
    const auto& pure_fl = runs[1];
    const auto& pure_chain = runs[2];

    std::printf("%-10s %-12s %-14s %s\n", "mode", "avg delay(s)",
                "final accuracy", "learns/ledgers");
    std::printf("%-10s %-12.2f %-14.4f learning + immutable ledger\n",
                fair.name.c_str(), fair.average_delay, fair.final_accuracy);
    std::printf("%-10s %-12.2f %-14.4f learning only (no chain)\n",
                pure_fl.name.c_str(), pure_fl.average_delay,
                pure_fl.final_accuracy);
    std::printf("%-10s %-12.2f %-14s ledger only (no learning)\n",
                pure_chain.name.c_str(), pure_chain.average_delay, "n/a");

    std::printf("\nscaling back functionality changes cost: pure FL saves "
                "%.1f s/round of blockchain overhead;\nFAIR-BFL pays it to "
                "gain immutability, incentives and attack resistance.\n",
                fair.average_delay - pure_fl.average_delay);
    return 0;
}
